/// A packed one-dimensional R-tree over timestamped entries — the
/// "1DR-tree" of Lu, Yang & Jensen (ICDE 2011) that the paper uses to index
/// the Indoor Uncertain Positioning Table on its time attribute (§3.3).
///
/// Entries are appended in non-decreasing time order (positioning reports
/// arrive chronologically), so leaves pack perfectly and internal levels
/// are arrays of `[t_min, t_max]` intervals. A range query descends the
/// interval hierarchy and returns the contiguous slice of matching entries.
///
/// Timestamps are `i64` (the workspace convention is milliseconds since
/// simulation start; this type is agnostic).
#[derive(Debug, Clone)]
pub struct TimeIndex<T> {
    entries: Vec<(i64, T)>,
    /// `levels[0]` summarizes chunks of `entries`; `levels[k]` summarizes
    /// chunks of `levels[k-1]`. Rebuilt lazily on query after appends.
    levels: Vec<Vec<(i64, i64)>>,
    fanout: usize,
    dirty: bool,
}

const DEFAULT_FANOUT: usize = 64;

impl<T> Default for TimeIndex<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TimeIndex<T> {
    /// Creates an empty index with the default fanout.
    pub fn new() -> Self {
        Self::with_fanout(DEFAULT_FANOUT)
    }

    /// Creates an empty index with node fanout `fanout` (>= 2).
    pub fn with_fanout(fanout: usize) -> Self {
        assert!(fanout >= 2, "time index fanout must be at least 2");
        TimeIndex {
            entries: Vec::new(),
            levels: Vec::new(),
            fanout,
            dirty: false,
        }
    }

    /// Bulk-builds from entries that are already sorted by time.
    ///
    /// # Panics
    /// Panics if `entries` is not sorted by timestamp.
    pub fn from_sorted(entries: Vec<(i64, T)>) -> Self {
        assert!(
            entries.windows(2).all(|w| w[0].0 <= w[1].0),
            "TimeIndex::from_sorted requires time-ordered entries"
        );
        let mut idx = Self::new();
        idx.entries = entries;
        idx.dirty = true;
        idx.rebuild();
        idx
    }

    /// Appends an entry; `t` must be >= the last appended timestamp.
    ///
    /// # Panics
    /// Panics on out-of-order appends — the IUPT is an append-only log of
    /// positioning reports, so an out-of-order record indicates a bug
    /// upstream rather than a condition to tolerate silently.
    pub fn push(&mut self, t: i64, value: T) {
        if let Some(&(last, _)) = self.entries.last() {
            assert!(t >= last, "TimeIndex append out of order: {t} after {last}");
        }
        self.entries.push((t, value));
        self.dirty = true;
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Smallest and largest indexed timestamps.
    pub fn time_bounds(&self) -> Option<(i64, i64)> {
        match (self.entries.first(), self.entries.last()) {
            (Some(&(lo, _)), Some(&(hi, _))) => Some((lo, hi)),
            _ => None,
        }
    }

    fn rebuild(&mut self) {
        self.levels.clear();
        if self.entries.is_empty() {
            self.dirty = false;
            return;
        }
        let mut current: Vec<(i64, i64)> = self
            .entries
            .chunks(self.fanout)
            .map(|c| (c.first().unwrap().0, c.last().unwrap().0))
            .collect();
        while current.len() > 1 {
            let next: Vec<(i64, i64)> = current
                .chunks(self.fanout)
                .map(|c| (c.first().unwrap().0, c.last().unwrap().1))
                .collect();
            self.levels.push(current);
            current = next;
        }
        self.levels.push(current);
        self.dirty = false;
    }

    /// Whether appends have happened since the interval hierarchy was last
    /// built (a [`TimeIndex::range_query`] would rebuild first).
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Explicitly (re)builds the interval hierarchy after a batch of
    /// appends, so that subsequent queries can go through the immutable
    /// [`TimeIndex::range_query_built`] path — e.g. from behind a shared
    /// reference, or on a hot serving path that must not pay a lazy
    /// rebuild at query time. Idempotent: a clean index is left untouched.
    pub fn freeze(&mut self) {
        if self.dirty {
            self.rebuild();
        }
    }

    /// Range query: returns the contiguous slice of entries with
    /// `ts <= t <= te`. Rebuilds the interval hierarchy first if appends
    /// happened since the last query.
    pub fn range_query(&mut self, ts: i64, te: i64) -> &[(i64, T)] {
        self.freeze();
        self.range_query_built(ts, te)
    }

    /// Range query on an index known to be up to date (e.g. built via
    /// [`TimeIndex::from_sorted`] and never appended to since).
    pub fn range_query_built(&self, ts: i64, te: i64) -> &[(i64, T)] {
        if ts > te || self.entries.is_empty() {
            return &[];
        }
        // Descend the interval hierarchy to find the first candidate leaf
        // chunk, then binary-search the exact boundaries inside the entry
        // array. The hierarchy bounds the search the same way node MBRs do
        // in a 1D R-tree.
        let (mut lo_chunk, mut hi_chunk) = match self.levels.last() {
            Some(root) if root.len() == 1 => (0usize, 1usize),
            _ => (0usize, self.levels.first().map_or(0, |l| l.len())),
        };
        for level in self.levels.iter().rev().skip(1) {
            let child_lo = lo_chunk * self.fanout;
            let child_hi = (hi_chunk * self.fanout).min(level.len());
            let slice = &level[child_lo..child_hi];
            let first = slice.partition_point(|&(_, max)| max < ts);
            let last = slice.partition_point(|&(min, _)| min <= te);
            lo_chunk = child_lo + first;
            hi_chunk = child_lo + last;
            if lo_chunk >= hi_chunk {
                return &[];
            }
        }
        let lo_entry = (lo_chunk * self.fanout).min(self.entries.len());
        let hi_entry = (hi_chunk * self.fanout).min(self.entries.len());
        let slice = &self.entries[lo_entry..hi_entry];
        let first = slice.partition_point(|&(t, _)| t < ts);
        let last = slice.partition_point(|&(t, _)| t <= te);
        &slice[first..last]
    }

    /// Iterates over all entries in time order.
    pub fn iter(&self) -> impl Iterator<Item = &(i64, T)> {
        self.entries.iter()
    }

    /// Height of the interval hierarchy (1 = single level of chunks).
    pub fn height(&self) -> usize {
        self.levels.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn build(n: i64) -> TimeIndex<i64> {
        TimeIndex::from_sorted((0..n).map(|t| (t * 10, t)).collect())
    }

    #[test]
    fn empty_index() {
        let mut idx: TimeIndex<u8> = TimeIndex::new();
        assert!(idx.is_empty());
        assert!(idx.range_query(0, 100).is_empty());
        assert!(idx.time_bounds().is_none());
    }

    #[test]
    fn exact_boundaries_inclusive() {
        let mut idx = build(100);
        let hits = idx.range_query(100, 200);
        assert_eq!(hits.len(), 11); // t = 100, 110, ..., 200
        assert_eq!(hits.first().unwrap().0, 100);
        assert_eq!(hits.last().unwrap().0, 200);
    }

    #[test]
    fn inverted_range_is_empty() {
        let mut idx = build(10);
        assert!(idx.range_query(50, 40).is_empty());
    }

    #[test]
    fn range_outside_data_is_empty() {
        let mut idx = build(10);
        assert!(idx.range_query(-100, -1).is_empty());
        assert!(idx.range_query(1000, 2000).is_empty());
    }

    #[test]
    fn duplicate_timestamps_all_returned() {
        let mut idx = TimeIndex::from_sorted(vec![(5, 'a'), (5, 'b'), (5, 'c'), (7, 'd')]);
        let hits = idx.range_query(5, 5);
        assert_eq!(hits.len(), 3);
    }

    #[test]
    fn push_then_query_rebuilds() {
        let mut idx = TimeIndex::with_fanout(4);
        for t in 0..200 {
            idx.push(t, t);
        }
        assert_eq!(idx.range_query(20, 29).len(), 10);
        idx.push(200, 200);
        assert_eq!(idx.range_query(195, 500).len(), 6);
    }

    /// The lazy `dirty`-flag rebuild was previously exercised only through
    /// `range_query`; this pins the explicit freeze/bulk-load contract:
    /// appends mark the index dirty, `freeze` clears it, and a frozen
    /// index answers `range_query_built` (the shared-reference path)
    /// identically to the lazy path — across repeated append/query/freeze
    /// interleavings.
    #[test]
    fn freeze_interleaved_with_appends_and_queries() {
        let mut idx = TimeIndex::with_fanout(4);
        assert!(!idx.is_dirty(), "empty index starts clean");
        idx.freeze(); // freeze of an empty index is a no-op
        assert!(idx.range_query_built(0, 100).is_empty());

        let mut appended = 0i64;
        for round in 0..5 {
            // Append a burst of entries; the index must go dirty.
            for _ in 0..37 {
                idx.push(appended * 10, appended);
                appended += 1;
            }
            assert!(idx.is_dirty(), "appends must mark the index dirty");

            // Freeze, then query through the immutable built path.
            idx.freeze();
            assert!(!idx.is_dirty());
            let lo = round * 50;
            let hi = lo + 120;
            let built: Vec<i64> = idx
                .range_query_built(lo, hi)
                .iter()
                .map(|&(_, v)| v)
                .collect();
            let want: Vec<i64> = (0..appended)
                .filter(|&v| v * 10 >= lo && v * 10 <= hi)
                .collect();
            assert_eq!(built, want, "round {round}");

            // The lazy path agrees and freezing again changes nothing.
            let lazy: Vec<i64> = idx.range_query(lo, hi).iter().map(|&(_, v)| v).collect();
            assert_eq!(lazy, want);
            idx.freeze();
            assert_eq!(idx.range_query_built(lo, hi).len(), want.len());
        }
        assert_eq!(idx.len(), 5 * 37);
    }

    /// `from_sorted` bulk-load yields an immediately frozen index.
    #[test]
    fn bulk_load_is_frozen() {
        let idx = TimeIndex::from_sorted((0..1000i64).map(|t| (t, t)).collect());
        assert!(!idx.is_dirty());
        assert_eq!(idx.range_query_built(10, 19).len(), 10);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn out_of_order_push_panics() {
        let mut idx = TimeIndex::new();
        idx.push(10, ());
        idx.push(5, ());
    }

    #[test]
    fn hierarchy_height_grows() {
        let idx = TimeIndex::<i64>::from_sorted((0..100_000).map(|t| (t, t)).collect());
        assert!(idx.height() >= 2);
        assert_eq!(idx.len(), 100_000);
        let hits = idx.range_query_built(12_345, 12_354);
        assert_eq!(hits.len(), 10);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn matches_linear_filter(
            mut times in proptest::collection::vec(0i64..10_000, 0..300),
            ts in 0i64..10_000,
            len in 0i64..5_000,
        ) {
            times.sort_unstable();
            let entries: Vec<(i64, usize)> =
                times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
            let idx = TimeIndex::from_sorted(entries.clone());
            let te = ts + len;
            let got: Vec<usize> =
                idx.range_query_built(ts, te).iter().map(|&(_, v)| v).collect();
            let want: Vec<usize> = entries
                .iter()
                .filter(|&&(t, _)| t >= ts && t <= te)
                .map(|&(_, v)| v)
                .collect();
            prop_assert_eq!(got, want);
        }

        #[test]
        fn small_fanout_matches_linear_filter(
            mut times in proptest::collection::vec(0i64..500, 1..200),
            ts in 0i64..500,
            len in 0i64..250,
        ) {
            times.sort_unstable();
            let mut idx = TimeIndex::with_fanout(2);
            for (i, &t) in times.iter().enumerate() {
                idx.push(t, i);
            }
            let te = ts + len;
            let got = idx.range_query(ts, te).len();
            let want = times.iter().filter(|&&t| t >= ts && t <= te).count();
            prop_assert_eq!(got, want);
        }
    }
}
