//! Quickstart: the paper's running example end to end.
//!
//! Builds the Figure 1 floor plan, loads the Table 2 uncertain positioning
//! data, computes indoor flows (reproducing Examples 2–4), and answers the
//! top-1 popular location query.
//!
//! Run with:
//! ```text
//! cargo run --release -p popflow-eval --example quickstart
//! ```

use indoor_iupt::fixtures::paper_table2;
use indoor_iupt::{TimeInterval, Timestamp};
use indoor_model::fixtures::paper_figure1;
use popflow_core::{best_first, flow, FlowConfig, QuerySet, TkPlQuery};

fn main() {
    // The Figure 1 floor plan: rooms r1..r5, hallway r6, P-locations
    // p1..p9, cells derived automatically (c1 = {r1, r2}).
    let fig = paper_figure1();
    let space = &fig.space;
    println!("indoor space: {}", space.stats());
    println!(
        "equivalent P-locations: p4 ≡ p9? {}   p6 ≡ p8? {}",
        space.matrix().equivalent(fig.p[3], fig.p[8]),
        space.matrix().equivalent(fig.p[5], fig.p[7]),
    );

    // The Table 2 IUPT: objects o1, o2, o3 reporting probabilistic sample
    // sets between t1 and t8.
    let mut iupt = paper_table2();
    println!("\nIUPT: {}", iupt.stats());

    // Example 3: indoor flows over [t1, t8] under the worked-example
    // (full-product) normalization — Θ(r6) = 1.97, Θ(r1) = 0.5.
    let interval = TimeInterval::new(Timestamp::from_secs(1), Timestamp::from_secs(8));
    let cfg = FlowConfig::default()
        .without_reduction()
        .with_full_product_normalization();
    for (name, q) in [("r1", fig.r[0]), ("r6", fig.r[5])] {
        let result = flow(space, &mut iupt, q, interval, &cfg).expect("flow computes");
        println!("Θ(t1..t8, {name}) = {:.2}", result.flow);
    }

    // Example 4: the top-1 popular location among Q = {r1, r6} is r6.
    let query = TkPlQuery::new(1, QuerySet::new(vec![fig.r[0], fig.r[5]]), interval);
    let outcome = best_first(space, &mut iupt, &query, &cfg).expect("query evaluates");
    let top = &outcome.ranking[0];
    println!(
        "\ntop-1 popular location: {} (flow {:.2})",
        space.sloc(top.sloc).name,
        top.flow
    );
    assert_eq!(top.sloc, fig.r[5], "the paper's Example 4 returns r6");
}
