//! Cross-crate property tests on randomly generated buildings and data:
//! structural invariants that must hold for *any* world, not just the
//! fixtures.

use indoor_geom::Point;
use indoor_iupt::{TimeInterval, Timestamp};
use indoor_model::{CellId, PartitionId};
use indoor_sim::{
    generate_building, simulate_mobility, BuildingGenConfig, MobilityConfig, Scenario, World,
};
use popflow_core::{
    best_first, best_first_par, nested_loop, nested_loop_par, reduction, ExecConfig, FlowConfig,
    QuerySet, TkPlQuery,
};
use proptest::prelude::*;

fn arb_building_config() -> impl Strategy<Value = BuildingGenConfig> {
    (
        1u16..3,     // floors
        2usize..4,   // room rows
        2usize..5,   // rooms per row
        0.0..1.0f64, // interconnect fraction
        0.3..1.0f64, // corridor opening ploc fraction
        1u64..500,   // seed
    )
        .prop_map(
            |(floors, rows, cols, inter, opening, seed)| BuildingGenConfig {
                floors,
                width: 12.0 + cols as f64 * 7.0,
                corridor_width: 2.0,
                room_rows: rows,
                rooms_per_row: cols,
                room_depth: 5.0,
                corridor_segment_len: 11.0,
                ploc_spacing: 3.0,
                room_door_ploc_fraction: 1.0,
                corridor_opening_ploc_fraction: opening,
                room_interconnect_fraction: inter,
                staircases: floors > 1,
                seed,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Cells partition the partition set: every partition belongs to
    /// exactly one cell, and cell membership round-trips.
    #[test]
    fn cells_partition_the_building(cfg in arb_building_config()) {
        let space = generate_building(&cfg);
        let n = space.building().partition_count();
        let mut seen = vec![false; n];
        for cell in space.cells() {
            prop_assert!(!cell.partitions.is_empty());
            for &p in &cell.partitions {
                prop_assert!(!seen[p.index()], "partition in two cells");
                seen[p.index()] = true;
                prop_assert_eq!(space.cell_of_partition(p), cell.id);
            }
        }
        prop_assert!(seen.into_iter().all(|s| s), "partition missing from cells");
    }

    /// Every P-location's cell set is consistent with the GISL edge that
    /// carries it, and equivalence classes tile the P-location set.
    #[test]
    fn matrix_classes_are_consistent(cfg in arb_building_config()) {
        let space = generate_building(&cfg);
        let m = space.matrix();
        let mut members = 0usize;
        for class in m.classes() {
            members += class.members.len();
            for &p in &class.members {
                prop_assert_eq!(m.cells_of(p), class.cells);
                prop_assert_eq!(m.class_of(p), class.id);
            }
        }
        prop_assert_eq!(members, m.ploc_count());
        // MIL symmetry on a sample of pairs.
        let count = m.ploc_count().min(12);
        for i in 0..count {
            for j in 0..count {
                let pi = indoor_model::PLocId(i as u32);
                let pj = indoor_model::PLocId(j as u32);
                let forward = m.cells_between(pi, pj);
                let backward = m.cells_between(pj, pi);
                prop_assert_eq!(forward.as_slice(), backward.as_slice());
            }
        }
    }

    /// Shortest routes are at least the straight-line distance and their
    /// legs are temporally contiguous walks within single partitions.
    #[test]
    fn shortest_routes_are_sane(cfg in arb_building_config(), seed in 0u64..100) {
        let space = generate_building(&cfg);
        let graph = space.door_graph();
        let building = space.building();
        let rooms: Vec<PartitionId> = building
            .partitions_of_kind(indoor_model::PartitionKind::Room)
            .map(|p| p.id)
            .collect();
        prop_assume!(rooms.len() >= 2);
        let a = rooms[seed as usize % rooms.len()];
        let b = rooms[(seed as usize + 1) % rooms.len()];
        let pa = building.partition(a).rect.center();
        let pb = building.partition(b).rect.center();
        let Some(route) = graph.shortest_route(building, (a, pa), (b, pb)) else {
            // Disconnected layouts are possible only without staircases on
            // multi-floor configs — not generated here.
            return Err(TestCaseError::fail("generated building disconnected"));
        };
        if building.partition(a).floor == building.partition(b).floor {
            prop_assert!(route.length + 1e-9 >= pa.distance(pb));
        }
        let sum: f64 = route.legs.iter().map(|l| l.cost()).sum();
        prop_assert!((sum - route.length).abs() < 1e-6);
    }

    /// Data reduction never increases the possible-path bound, preserves
    /// per-set probability mass, and leaves PSLs unchanged.
    #[test]
    fn reduction_invariants_on_simulated_data(cfg in arb_building_config()) {
        let space = generate_building(&cfg);
        let mobility = MobilityConfig {
            num_objects: 3,
            duration_secs: 240,
            vmax: 1.0,
            dwell_secs: (15, 45),
            lifespan_secs: (120, 240),
            destination_skew: 0.5,
            seed: cfg.seed,
        };
        let trajectories = simulate_mobility(&space, &mobility);
        let iupt = indoor_sim::generate_iupt(
            &space,
            &trajectories,
            &indoor_sim::PositioningConfig::paper_synthetic(),
        );
        let mut by_oid: std::collections::HashMap<_, Vec<_>> = Default::default();
        for r in iupt.iter() {
            by_oid.entry(r.oid).or_default().push(r.samples.clone());
        }
        for sets in by_oid.values() {
            let with = reduction::scan_sequence(&space, sets.iter(), true).unwrap();
            let without = reduction::scan_sequence(&space, sets.iter(), false).unwrap();
            prop_assert!(with.sets.len() <= without.sets.len());
            prop_assert!(with.max_paths() <= without.max_paths());
            prop_assert_eq!(&with.psls, &without.psls);
            for s in &with.sets {
                prop_assert!((s.prob_sum() - 1.0).abs() < 1e-6);
            }
            // Query pruning is consistent with PSL overlap.
            if let Some(&first) = with.psls.first() {
                let hit = QuerySet::new(vec![first]);
                prop_assert!(
                    reduction::reduce_for_query(&space, sets.iter(), &hit, true)
                        .unwrap()
                        .is_some()
                );
            }
        }
    }
}

#[test]
fn point_partition_lookup_agrees_with_geometry() {
    // Deterministic sweep: partition_at must agree with direct rect
    // containment on a lattice of probe points.
    let space = generate_building(&BuildingGenConfig::tiny());
    let building = space.building();
    let floor = building.floors()[0];
    let bounds = building.floor_bounds(floor).unwrap();
    let mut probes = 0;
    for i in 0..30 {
        for j in 0..30 {
            let p = Point::new(
                bounds.min.x + bounds.width() * (i as f64 + 0.5) / 30.0,
                bounds.min.y + bounds.height() * (j as f64 + 0.5) / 30.0,
            );
            let via_index = building.partitions_at(floor, p);
            let via_scan: Vec<PartitionId> = building
                .partitions()
                .iter()
                .filter(|part| part.floor == floor && part.rect.contains_point(p))
                .map(|part| part.id)
                .collect();
            let mut a = via_index.clone();
            let mut b = via_scan.clone();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "lookup mismatch at {p}");
            probes += 1;
        }
    }
    assert_eq!(probes, 900);
    let _ = CellId(0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The parallel batch drivers are bit-identical to their serial
    /// counterparts — same slocs at every rank, same flow bits — across
    /// thread counts {1, 2, 4, 7}, random worlds, random query subsets,
    /// random windows, and both presence-engine families. This is the
    /// `popflow-exec` determinism contract observed end to end.
    #[test]
    fn parallel_drivers_bit_identical_to_serial(
        seed in 0u64..500,
        k in 1usize..5,
        stride in 1usize..4,
        start_frac in 0.0f64..0.5,
        len_frac in 0.3f64..1.0,
        engine_pick in 0u8..2,
    ) {
        let world = World::generate(Scenario::tiny().with_seed(seed));
        let slocs: Vec<_> = world
            .space
            .slocs()
            .iter()
            .map(|s| s.id)
            .enumerate()
            .filter(|(i, _)| i % stride == 0)
            .map(|(_, s)| s)
            .collect();
        prop_assume!(!slocs.is_empty());

        let dur_millis = world.scenario.mobility.duration_secs * 1000;
        let start = (dur_millis as f64 * start_frac) as i64;
        let end = start + ((dur_millis - start) as f64 * len_frac) as i64;
        let query = TkPlQuery::new(
            k,
            QuerySet::new(slocs),
            TimeInterval::new(Timestamp(start), Timestamp(end.max(start + 1))),
        );
        let base = if engine_pick == 0 {
            FlowConfig::default().with_dp_engine()
        } else {
            // The hybrid engine: enumeration with DP fallback — both
            // fallback paths must stay deterministic under threading.
            FlowConfig {
                engine: popflow_core::PresenceEngine::Hybrid,
                path_budget: 20_000,
                ..FlowConfig::default()
            }
        };

        let mut iupt = world.iupt.clone();
        let nl = nested_loop(&world.space, &mut iupt, &query, &base).unwrap();
        let bf = best_first(&world.space, &mut iupt, &query, &base).unwrap();
        for threads in [1usize, 2, 4, 7] {
            let cfg = FlowConfig {
                exec: ExecConfig::with_threads(threads),
                ..base
            };
            let nl_par = nested_loop_par(&world.space, &mut iupt, &query, &cfg).unwrap();
            prop_assert_eq!(
                nl.topk_slocs(),
                nl_par.topk_slocs(),
                "nested_loop slocs diverged at {} threads (seed {})",
                threads,
                seed
            );
            for (a, b) in nl.ranking.iter().zip(nl_par.ranking.iter()) {
                prop_assert_eq!(
                    a.flow.to_bits(),
                    b.flow.to_bits(),
                    "nested_loop flow bits diverged at {} threads (seed {}): {} vs {}",
                    threads,
                    seed,
                    a.flow,
                    b.flow
                );
            }
            prop_assert_eq!(nl.stats.objects_computed, nl_par.stats.objects_computed);

            let bf_par = best_first_par(&world.space, &mut iupt, &query, &cfg).unwrap();
            prop_assert_eq!(
                bf.topk_slocs(),
                bf_par.topk_slocs(),
                "best_first slocs diverged at {} threads (seed {})",
                threads,
                seed
            );
            for (a, b) in bf.ranking.iter().zip(bf_par.ranking.iter()) {
                prop_assert_eq!(
                    a.flow.to_bits(),
                    b.flow.to_bits(),
                    "best_first flow bits diverged at {} threads (seed {}): {} vs {}",
                    threads,
                    seed,
                    a.flow,
                    b.flow
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `WindowSpec` arithmetic invariants, including negative timestamps:
    /// buckets tile the time axis, a bucket is complete only once its
    /// final millisecond has elapsed, and every instant of the window at
    /// `now` maps into the window's bucket range.
    #[test]
    fn window_spec_invariants(
        bucket_millis in 1i64..5_000,
        window_buckets in 1usize..10,
        now_millis in -1_000_000i64..1_000_000,
        probe in 0u64..u64::MAX,
    ) {
        use indoor_iupt::Timestamp;
        use popflow_core::WindowSpec;

        let spec = WindowSpec::new(bucket_millis, window_buckets);
        let now = Timestamp(now_millis);

        // bucket_of / bucket_interval consistency: every t lies in
        // exactly the bucket that claims it, and buckets abut.
        let b = spec.bucket_of(now);
        let iv = spec.bucket_interval(b);
        prop_assert!(iv.contains(now), "t {now_millis} outside its bucket {b}");
        prop_assert_eq!(iv.end.millis() - iv.start.millis() + 1, bucket_millis);
        prop_assert_eq!(spec.bucket_interval(b + 1).start.millis(), iv.end.millis() + 1);

        // last_complete_bucket: bucket `c` has fully elapsed
        // (end < now), bucket `c + 1` has not.
        let c = spec.last_complete_bucket(now);
        prop_assert!(
            spec.bucket_interval(c).end < now,
            "bucket {c} claimed complete at {now_millis} but its end has not elapsed"
        );
        prop_assert!(
            spec.bucket_interval(c + 1).end >= now,
            "bucket {} should also count as complete at {now_millis}", c + 1
        );

        // window_at: ends at the last complete bucket, spans exactly
        // window_buckets buckets, and every contained instant maps into
        // [start bucket, end bucket].
        let (end_bucket, window) = spec.window_at(now);
        prop_assert_eq!(end_bucket, c);
        let start_bucket = end_bucket - window_buckets as i64 + 1;
        prop_assert_eq!(
            window.end.millis() - window.start.millis() + 1,
            spec.window_millis()
        );
        prop_assert_eq!(window.start.millis(), start_bucket * bucket_millis);
        prop_assert_eq!(window.end.millis(), (end_bucket + 1) * bucket_millis - 1);
        // A pseudo-random probe inside the window, sampling the whole
        // span across cases.
        let span = spec.window_millis();
        let offset = (probe % span as u64) as i64;
        let t = Timestamp(window.start.millis() + offset);
        prop_assert!(window.contains(t));
        let tb = spec.bucket_of(t);
        prop_assert!(
            start_bucket <= tb && tb <= end_bucket,
            "window instant {} fell in bucket {tb}, outside [{start_bucket}, {end_bucket}]",
            t.millis()
        );
        // Window boundaries land exactly on bucket boundaries.
        prop_assert_eq!(spec.bucket_of(window.start), start_bucket);
        prop_assert_eq!(spec.bucket_of(window.end), end_bucket);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Histogram recording is order- and partition-independent: any
    /// split of a value stream across two histograms — with one part
    /// recorded in reverse — merges to exactly the snapshot of
    /// recording everything into one histogram in order. This is what
    /// makes the per-shard and per-engine histograms safe to aggregate.
    #[test]
    fn histogram_merge_is_order_independent(
        values in proptest::collection::vec(0u64..(1u64 << 44), 1..120),
        split in 0usize..1_000,
    ) {
        use popflow_obs::Histogram;

        let split = split % values.len();
        let whole = Histogram::new();
        for &v in &values {
            whole.record(v);
        }
        let left = Histogram::new();
        for &v in &values[..split] {
            left.record(v);
        }
        let right = Histogram::new();
        for &v in values[split..].iter().rev() {
            right.record(v);
        }
        let mut merged = left.snapshot();
        merged.merge_from(&right.snapshot());
        prop_assert_eq!(merged, whole.snapshot());
    }

    /// Quantiles are monotone in `q`, never exceed the exact maximum,
    /// and the log-bucketed p999 stays within the scheme's 1/16
    /// relative-error bound of it.
    #[test]
    fn histogram_quantiles_are_monotone_and_bounded(
        values in proptest::collection::vec(0u64..(1u64 << 44), 1..120),
    ) {
        use popflow_obs::Histogram;

        let hist = Histogram::new();
        for &v in &values {
            hist.record(v);
        }
        let snap = hist.snapshot();
        let exact_max = values.iter().copied().max().unwrap();
        prop_assert_eq!(snap.max, exact_max);
        let qs = [
            snap.quantile(0.50),
            snap.quantile(0.90),
            snap.quantile(0.99),
            snap.quantile(0.999),
        ];
        for pair in qs.windows(2) {
            prop_assert!(pair[0] <= pair[1], "quantiles not monotone: {qs:?}");
        }
        prop_assert!(qs[3] <= exact_max);
        // p999 is the top rank here (< 1000 samples): it lands in the
        // maximum's bucket, whose upper bound overshoots the exact max
        // by at most a sub-bucket width (1/16 relative).
        prop_assert!(
            qs[3] >= exact_max - exact_max / 16,
            "p999 {} under the error bound of max {exact_max}",
            qs[3]
        );
    }
}

/// A populated snapshot survives the JSON round-trip bit for bit — the
/// `BENCH_obs.json` artifact is a faithful export.
#[test]
fn obs_snapshot_json_round_trips() {
    use popflow_obs::{MetricsRegistry, Snapshot};

    let registry = MetricsRegistry::new();
    registry.counter("serve.records_ingested").add(12_345);
    registry.gauge("serve.log_bytes").set(987_654_321);
    let h = registry.histogram("serve.advance_ns");
    for v in [0, 1, 15, 16, 17, 1_000, 1_000_000, u64::MAX] {
        h.record(v);
    }
    let snap = registry.snapshot();
    let parsed = Snapshot::from_json(&snap.to_json()).expect("export parses");
    assert_eq!(parsed, snap);
}

/// The diff of a snapshot with itself is all-zero — per-interval deltas
/// of an idle engine report no activity.
#[test]
fn obs_snapshot_self_diff_is_zero() {
    use popflow_obs::MetricsRegistry;

    let registry = MetricsRegistry::new();
    registry.counter("c").add(7);
    registry.gauge("g").set(3);
    let h = registry.histogram("h");
    h.record(42);
    h.record(42_000_000);
    let snap = registry.snapshot();
    let diff = snap.diff(&snap);
    assert!(diff.is_all_zero(), "self-diff not zero: {diff:?}");
    assert_eq!(diff.counters["c"], 0);
    assert!(diff.histograms["h"].is_empty());
}
