//! Figure 10 (paper §5.2.3): NL and BF running time vs Δt (k = 3,
//! |Q| = 8 locations). Cost grows sharply with the window. The paper
//! sweeps {30, 60, 90} minutes; the bench sweeps {15, 30, 60} to keep
//! `cargo bench` wall-clock bounded — the growth shape is identical and
//! the `experiments fig10` binary covers the paper's exact grid.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use popflow_bench::{query_n, real_lab, run_once, Method};

fn bench(c: &mut Criterion) {
    let mut lab = real_lab();
    let mut group = c.benchmark_group("fig10_dt");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for dt in [15i64, 30, 60] {
        let q = query_n(&lab, 3, 8, dt, 10);
        for method in [Method::Nl, Method::Bf] {
            group.bench_with_input(BenchmarkId::new(method.name(), dt), &dt, |b, _| {
                b.iter(|| run_once(&mut lab, method, &q))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
