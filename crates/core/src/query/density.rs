//! Top-k *dense* location queries — the paper's §7 future work ("it is
//! possible to study historical densities for indoor locations by
//! considering the impact of their sizes").
//!
//! A large hallway outranks a small exhibit room on raw flow simply by
//! intercepting more traffic. The density query divides each query
//! location's indoor flow by its region area (m²), ranking locations by
//! *flow density* — crowding rather than throughput.

use indoor_iupt::Iupt;
use indoor_model::{IndoorSpace, SLocId};

use crate::config::{FlowConfig, FlowError};
use crate::query::{nested_loop, rank_topk, QueryOutcome, TkPlQuery};

/// Area of an S-location in m²: the sum of its member partitions' areas
/// (exact for our rectangular partitions; the MBR would overestimate
/// multi-partition locations).
pub fn sloc_area(space: &IndoorSpace, sloc: SLocId) -> f64 {
    space
        .sloc(sloc)
        .partitions
        .iter()
        .map(|&p| space.building().partition(p).area())
        .sum()
}

/// Evaluates a top-k **dense** location query: ranks the query set by
/// `Θ(q) / area(q)` over the query interval. The returned
/// [`QueryOutcome`]'s `flow` fields hold densities (objects per m²).
pub fn top_k_dense(
    space: &IndoorSpace,
    iupt: &mut Iupt,
    query: &TkPlQuery,
    cfg: &FlowConfig,
) -> Result<QueryOutcome, FlowError> {
    // Flows for the whole query set, then rescale; the density ranking
    // needs every candidate's flow, so there is no top-k short-cut to
    // exploit (the Best-First bound is on flows, not densities).
    let full = TkPlQuery::new(
        query.query_set.len(),
        query.query_set.clone(),
        query.interval,
    );
    let outcome = nested_loop(space, iupt, &full, cfg)?;
    let densities: Vec<(SLocId, f64)> = outcome
        .ranking
        .iter()
        .map(|r| {
            let area = sloc_area(space, r.sloc).max(f64::MIN_POSITIVE);
            (r.sloc, r.flow / area)
        })
        .collect();
    Ok(QueryOutcome {
        ranking: rank_topk(densities, query.k),
        stats: outcome.stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query_set::QuerySet;
    use indoor_iupt::fixtures::paper_table2;
    use indoor_iupt::{TimeInterval, Timestamp};
    use indoor_model::fixtures::paper_figure1;

    fn interval() -> TimeInterval {
        TimeInterval::new(Timestamp::from_secs(1), Timestamp::from_secs(8))
    }

    fn cfg() -> FlowConfig {
        // Worked-example numbers (Θ(r6) = 1.97) assume raw sequences and
        // the full-product normalization.
        FlowConfig::default()
            .without_reduction()
            .with_full_product_normalization()
    }

    #[test]
    fn areas_match_geometry() {
        let fig = paper_figure1();
        // r1 is 6 m × 4 m; r6 (the hallway) is 12 m × 4 m.
        assert!((sloc_area(&fig.space, fig.r[0]) - 24.0).abs() < 1e-9);
        assert!((sloc_area(&fig.space, fig.r[5]) - 48.0).abs() < 1e-9);
    }

    #[test]
    fn density_reranks_flow_winners() {
        let fig = paper_figure1();
        let mut iupt = paper_table2();
        let query = TkPlQuery::new(2, QuerySet::new(vec![fig.r[0], fig.r[5]]), interval());
        let dense = top_k_dense(&fig.space, &mut iupt, &query, &cfg()).unwrap();
        // Θ(r6) = 1.97 over 48 m² → 0.0410…; Θ(r1) = 0.5 over 24 m² →
        // 0.0208… — r6 still wins here, with the density values exposed.
        assert_eq!(dense.ranking[0].sloc, fig.r[5]);
        assert!((dense.ranking[0].flow - 1.97 / 48.0).abs() < 1e-9);
        assert!((dense.ranking[1].flow - 0.5 / 24.0).abs() < 1e-9);
    }

    #[test]
    fn density_can_invert_the_flow_ranking() {
        // Against a location 10× larger, a modest flow advantage is not
        // enough: compare r6 (hallway, 48 m²) with r4 (24 m²).
        let fig = paper_figure1();
        let mut i1 = paper_table2();
        let query = TkPlQuery::new(2, QuerySet::new(vec![fig.r[3], fig.r[5]]), interval());
        let by_flow = nested_loop(
            &fig.space,
            &mut i1,
            &TkPlQuery::new(2, query.query_set.clone(), query.interval),
            &cfg(),
        )
        .unwrap();
        let mut i2 = paper_table2();
        let by_density = top_k_dense(&fig.space, &mut i2, &query, &cfg()).unwrap();
        // Flow favors the hallway; density divides its 2× area away, so
        // the ranking may flip whenever Θ(r4) > Θ(r6)/2 — verify the
        // density values are consistent with the flows either way.
        let flow_of =
            |out: &QueryOutcome, s: SLocId| out.ranking.iter().find(|r| r.sloc == s).unwrap().flow;
        let check = |s: SLocId, area: f64| {
            let f = flow_of(&by_flow, s);
            let d = flow_of(&by_density, s);
            assert!((d - f / area).abs() < 1e-9, "{s}: {d} vs {f}/{area}");
        };
        check(fig.r[3], 24.0);
        check(fig.r[5], 48.0);
    }

    #[test]
    fn k_truncates_density_ranking() {
        let fig = paper_figure1();
        let mut iupt = paper_table2();
        let query = TkPlQuery::new(1, QuerySet::new(fig.r.to_vec()), interval());
        let out = top_k_dense(&fig.space, &mut iupt, &query, &cfg()).unwrap();
        assert_eq!(out.ranking.len(), 1);
    }
}
