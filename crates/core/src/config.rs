/// How an object's presence (Eq. 1) is normalized over its possible paths.
///
/// The paper is internally inconsistent here (see DESIGN.md §2.2): the
/// worked Examples 2–4 divide by the *full* Cartesian mass (which is 1 for
/// well-formed sample sets), giving `Φ(r6, o2) = 0.85`, while Algorithm 2
/// lines 16–21 normalize by the mass of *valid* paths only, which would
/// give 1.0 for the same object. Both semantics are implemented.
///
/// The default is [`Normalization::ValidPaths`] — the Algorithm 2
/// semantics. Besides being what the pseudocode prints, it is the only
/// choice that behaves sensibly on long query windows: under
/// `FullProduct`, every topologically inconsistent report (which real
/// positioning data produces constantly) *permanently* shrinks an
/// object's valid mass, so presence decays multiplicatively toward zero
/// as Δt grows — incompatible with the paper's reported long-window
/// effectiveness. `FullProduct` is kept to reproduce the worked examples
/// exactly and for the normalization ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Normalization {
    /// Divide by the total probability mass of the raw Cartesian product
    /// (`Π_i Σ_e prob(e)`, = 1 for well-formed sets). Invalid paths damp
    /// the presence — an object whose reports are topologically
    /// inconsistent counts less. Matches the paper's worked Examples 2–4.
    FullProduct,
    /// Divide by the probability mass of valid paths only, conditioning on
    /// topological consistency. Matches Algorithm 2 as printed.
    #[default]
    ValidPaths,
}

/// Which presence engine evaluates Eq. 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PresenceEngine {
    /// Enumerate valid possible paths exactly as Algorithms 2–3 do.
    /// Faithful to the paper; cost grows with the number of valid paths
    /// (bounded by [`FlowConfig::path_budget`]).
    #[default]
    PathEnumeration,
    /// Exact dynamic program over (step, last P-location) pairs — our
    /// optimization exploiting that the pass probability factorizes over
    /// consecutive pairs. Produces identical values (property-tested) in
    /// `O(n · m²)` per object/query regardless of path count.
    TransitionDp,
    /// Enumerate paths per object and fall back to the transition DP for
    /// exactly the objects whose path set exceeds
    /// [`FlowConfig::path_budget`] — the paper's engine wherever it is
    /// feasible, with exact graceful degradation elsewhere (the paper
    /// spills oversized path sets to disk instead). The experiment harness
    /// uses this engine.
    Hybrid,
}

/// Configuration for flow computation and the TkPLQ search algorithms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowConfig {
    /// How presence probabilities are normalized across paths.
    pub normalization: Normalization,
    /// Which presence-computation engine evaluates the paths.
    pub engine: PresenceEngine,
    /// Apply the §3.2 data reduction (intra-merge + inter-merge) before
    /// path construction. The paper's `-ORG` variants set this to `false`.
    pub use_reduction: bool,
    /// Upper bound on path-extension steps per object during enumeration;
    /// exceeding it aborts with [`FlowError::PathBudgetExceeded`] instead
    /// of exhausting memory (the paper spills paths to disk; we fail fast
    /// and point at the DP engine).
    pub path_budget: u64,
    /// Parallelism for the `*_par` batch drivers
    /// ([`crate::query::nested_loop_par`],
    /// [`crate::query::best_first_par`]): per-object work forks across
    /// `exec.threads` scoped workers and merges deterministically, so
    /// results are bit-identical at every thread count. The serial
    /// drivers ignore it. Defaults to one thread.
    pub exec: popflow_exec::ExecConfig,
    /// Consult the per-`SetRef` kernel memo ([`crate::memo::FlowMemo`])
    /// when one is available: the batch engines use a memo attached to
    /// their [`crate::TkplqRequest`], and the `popflow-serve` shards own
    /// one per shard. Memoized results are **bit-identical** to
    /// recomputation (cached per interned sequence, which is
    /// value-preserving), so this defaults to `true`; set `false` to
    /// force every kernel evaluation from scratch (the memo-off baseline
    /// of the experiments). Excluded from the memo's own context
    /// fingerprint, like `exec`.
    pub memo: bool,
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig {
            normalization: Normalization::default(),
            engine: PresenceEngine::default(),
            use_reduction: true,
            path_budget: 2_000_000,
            exec: popflow_exec::ExecConfig::default(),
            memo: true,
        }
    }
}

impl FlowConfig {
    /// The paper's `-ORG` configuration: no data reduction.
    pub fn without_reduction(mut self) -> Self {
        self.use_reduction = false;
        self
    }

    /// Switch to the transition-DP engine.
    pub fn with_dp_engine(mut self) -> Self {
        self.engine = PresenceEngine::TransitionDp;
        self
    }

    /// Switch to Algorithm-2-faithful valid-path normalization (the
    /// default).
    pub fn with_valid_paths_normalization(mut self) -> Self {
        self.normalization = Normalization::ValidPaths;
        self
    }

    /// Switch to the worked-example full-product normalization.
    pub fn with_full_product_normalization(mut self) -> Self {
        self.normalization = Normalization::FullProduct;
        self
    }

    /// Let the `*_par` drivers fork across `threads` workers.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.exec = popflow_exec::ExecConfig::with_threads(threads);
        self
    }

    /// Enable or disable the per-`SetRef` kernel memo (enabled by
    /// default; results are bit-identical either way).
    pub fn with_memo(mut self, enabled: bool) -> Self {
        self.memo = enabled;
        self
    }
}

/// Errors produced by flow computation and the continuous engines.
///
/// Conditions that a long-running serving process can hit through one
/// malformed input — a record whose probabilities degenerated to NaN, a
/// report arriving out of time order — are errors, not panics, so a
/// single bad record cannot take the whole engine down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlowError {
    /// Path enumeration exceeded [`FlowConfig::path_budget`] extension
    /// steps. Shorten the query interval, enable data reduction, or switch
    /// to [`PresenceEngine::TransitionDp`].
    PathBudgetExceeded {
        /// The configured budget that was exhausted.
        budget: u64,
    },
    /// A sample set violated its invariants during processing (e.g. a
    /// merge produced non-finite probabilities from a malformed record).
    InvalidSampleSet {
        /// What invariant was violated.
        detail: String,
    },
    /// A continuous engine was asked to move backwards in time — either an
    /// out-of-order record on ingest or an `advance` before the previous
    /// one. Timestamps are raw milliseconds.
    TimeRegression {
        /// The engine frontier that must not be crossed.
        last_millis: i64,
        /// The earlier timestamp that tried to cross it.
        offending_millis: i64,
    },
    /// A continuous engine can no longer serve (e.g. a shard worker died).
    EngineUnavailable {
        /// Why the engine is out of service.
        detail: String,
    },
    /// A query handed to a multi-query engine was rejected — an unknown
    /// [`crate::QueryId`], a bucket width that does not match the
    /// engine's cache granularity, or an advance with nothing registered.
    /// Rejections leave the engine untouched.
    InvalidQuery {
        /// Why the query was rejected.
        detail: String,
    },
}

impl std::fmt::Display for FlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowError::PathBudgetExceeded { budget } => write!(
                f,
                "path enumeration exceeded the budget of {budget} extensions; \
                 enable data reduction or use the TransitionDp engine"
            ),
            FlowError::InvalidSampleSet { detail } => {
                write!(f, "invalid sample set: {detail}")
            }
            FlowError::TimeRegression {
                last_millis,
                offending_millis,
            } => write!(
                f,
                "time regression: {offending_millis} ms arrived after {last_millis} ms; \
                 continuous engines require non-decreasing time"
            ),
            FlowError::EngineUnavailable { detail } => {
                write!(f, "continuous engine unavailable: {detail}")
            }
            FlowError::InvalidQuery { detail } => {
                write!(f, "invalid query: {detail}")
            }
        }
    }
}

impl std::error::Error for FlowError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_defaults() {
        let cfg = FlowConfig::default();
        assert_eq!(cfg.normalization, Normalization::ValidPaths);
        assert_eq!(cfg.engine, PresenceEngine::PathEnumeration);
        assert!(cfg.use_reduction);
    }

    #[test]
    fn builder_helpers() {
        let cfg = FlowConfig::default()
            .without_reduction()
            .with_dp_engine()
            .with_valid_paths_normalization();
        assert!(!cfg.use_reduction);
        assert_eq!(cfg.engine, PresenceEngine::TransitionDp);
        assert_eq!(cfg.normalization, Normalization::ValidPaths);
    }

    #[test]
    fn error_display_mentions_remedy() {
        let e = FlowError::PathBudgetExceeded { budget: 5 };
        assert!(e.to_string().contains("TransitionDp"));
    }
}
