/// A small dynamic bitset used to track, per possible path, which query
/// S-locations the path touches (the `Hφ : {path} → 2^Q` hash table of
/// Algorithm 3, keyed by index into the object's relevant query list).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SmallBitset {
    words: Vec<u64>,
}

impl SmallBitset {
    /// An empty bitset able to hold `bits` bits.
    pub fn with_capacity(bits: usize) -> Self {
        SmallBitset {
            words: vec![0; bits.div_ceil(64)],
        }
    }

    /// Sets bit `i` (growing if needed).
    pub fn set(&mut self, i: usize) {
        let w = i / 64;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        self.words[w] |= 1u64 << (i % 64);
    }

    /// Whether bit `i` is set.
    pub fn get(&self, i: usize) -> bool {
        let w = i / 64;
        w < self.words.len() && (self.words[w] >> (i % 64)) & 1 == 1
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &SmallBitset) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= *b;
        }
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates over set bit indexes in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let tz = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(wi * 64 + tz)
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut b = SmallBitset::with_capacity(10);
        assert!(b.is_empty());
        b.set(3);
        b.set(64);
        b.set(130);
        assert!(b.get(3) && b.get(64) && b.get(130));
        assert!(!b.get(4) && !b.get(129));
        assert_eq!(b.count(), 3);
    }

    #[test]
    fn union_grows() {
        let mut a = SmallBitset::with_capacity(4);
        a.set(1);
        let mut b = SmallBitset::with_capacity(4);
        b.set(100);
        a.union_with(&b);
        assert!(a.get(1) && a.get(100));
    }

    #[test]
    fn iter_ascending() {
        let mut b = SmallBitset::default();
        for i in [5usize, 63, 64, 200] {
            b.set(i);
        }
        let got: Vec<usize> = b.iter().collect();
        assert_eq!(got, vec![5, 63, 64, 200]);
    }

    #[test]
    fn get_out_of_range_is_false() {
        let b = SmallBitset::with_capacity(1);
        assert!(!b.get(500));
    }
}
