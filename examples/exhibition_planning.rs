//! Exhibition planning — the paper's first motivating scenario: "the
//! top-k regions with highest flows indicate which items are the most
//! popular, and they can be used to make recommendations to future
//! visitors or to optimize the exhibition selections" (§1).
//!
//! Generates a single-floor exhibition hall, simulates visitors with
//! skewed interest across exhibit rooms, derives Wi-Fi-style uncertain
//! positioning data, and asks: which five exhibits drew the most
//! visitors in the last hour? The answer is checked against the simulated
//! ground truth.
//!
//! Run with:
//! ```text
//! cargo run --release -p popflow-eval --example exhibition_planning
//! ```

use indoor_model::PartitionKind;
use indoor_sim::{BuildingGenConfig, MobilityConfig, PositioningConfig, Scenario, World};
use popflow_core::{best_first, FlowConfig, PresenceEngine, QuerySet, TkPlQuery};
use popflow_eval::{kendall_tau, recall};

fn main() {
    // A 60 m × 45 m exhibition hall: 3 bands of 5 exhibit rooms around
    // wide corridors, positioning reference points every ~3.5 m.
    let scenario = Scenario {
        building: BuildingGenConfig {
            floors: 1,
            width: 60.0,
            corridor_width: 4.0,
            room_rows: 3,
            rooms_per_row: 5,
            room_depth: 11.0,
            corridor_segment_len: 20.0,
            ploc_spacing: 3.5,
            room_door_ploc_fraction: 1.0,
            corridor_opening_ploc_fraction: 0.8,
            room_interconnect_fraction: 0.1,
            staircases: false,
            seed: 2024,
        },
        mobility: MobilityConfig {
            num_objects: 150,
            duration_secs: 2 * 3600,
            vmax: 1.0,
            dwell_secs: (3 * 60, 12 * 60), // visitors linger at exhibits
            lifespan_secs: (30 * 60, 2 * 3600),
            destination_skew: 1.1, // strong favorites
            seed: 7,
        },
        positioning: PositioningConfig {
            mu: 4.0,
            ..PositioningConfig::paper_synthetic()
        },
    };
    let world = World::generate(scenario);
    println!("exhibition hall: {}", world.space.stats());
    println!(
        "visitors: {} — IUPT: {}",
        world.trajectories.len(),
        world.iupt.stats()
    );

    // Query set: the exhibit rooms only (corridors are not exhibits).
    let exhibits: Vec<_> = world
        .space
        .building()
        .partitions_of_kind(PartitionKind::Room)
        .flat_map(|p| world.space.slocs_of_partition(p.id).to_vec())
        .collect();
    let interval = world.window(60, 60); // the last hour
    let query = TkPlQuery::new(5, QuerySet::new(exhibits.clone()), interval);

    let mut iupt = world.iupt.clone();
    let cfg = FlowConfig {
        engine: PresenceEngine::Hybrid,
        ..FlowConfig::default()
    };
    let outcome = best_first(&world.space, &mut iupt, &query, &cfg).expect("query evaluates");

    println!("\ntop-5 exhibits by estimated visitor flow:");
    for (rank, r) in outcome.ranking.iter().enumerate() {
        println!(
            "  {}. {:<10} flow {:6.1}",
            rank + 1,
            world.space.sloc(r.sloc).name,
            r.flow
        );
    }
    println!(
        "objects pruned before flow computing: {:.1}%",
        outcome.stats.pruning_ratio() * 100.0
    );

    // Score against the simulated ground truth.
    let truth: Vec<_> = world
        .ground_truth_topk(interval, &exhibits, 5)
        .into_iter()
        .map(|(s, _)| s)
        .collect();
    let result = outcome.topk_slocs();
    println!("\nground-truth top-5:");
    for (rank, s) in truth.iter().enumerate() {
        println!("  {}. {}", rank + 1, world.space.sloc(*s).name);
    }
    println!(
        "\nKendall τ = {:.3}, recall = {:.2}",
        kendall_tau(&result, &truth),
        recall(&result, &truth)
    );
}
