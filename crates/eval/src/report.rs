//! Result rows and plain-text table rendering for the experiment harness.

/// One measurement row of an experiment (one method at one x-axis
/// setting).
#[derive(Debug, Clone)]
pub struct Row {
    /// Experiment id, e.g. `"fig8"`.
    pub exp: String,
    /// X-axis label, e.g. `"k=3"` or `"mss=4"`.
    pub x: String,
    /// Method name, e.g. `"BF"`.
    pub method: String,
    /// Mean running time in seconds.
    pub time_secs: Option<f64>,
    /// Mean pruning ratio in `[0, 1]`.
    pub pruning: Option<f64>,
    /// Mean Kendall τ.
    pub tau: Option<f64>,
    /// Mean recall.
    pub recall: Option<f64>,
    /// Free-form annotation (e.g. `"dp-fallback"`).
    pub note: String,
}

impl Row {
    /// A row with only the identifying fields set.
    pub fn new(exp: impl Into<String>, x: impl Into<String>, method: impl Into<String>) -> Self {
        Row {
            exp: exp.into(),
            x: x.into(),
            method: method.into(),
            time_secs: None,
            pruning: None,
            tau: None,
            recall: None,
            note: String::new(),
        }
    }
}

fn fmt_opt(v: Option<f64>, digits: usize) -> String {
    match v {
        Some(v) => format!("{v:.digits$}"),
        None => "-".into(),
    }
}

/// Renders rows as an aligned text table.
pub fn render_table(rows: &[Row]) -> String {
    let headers = [
        "exp", "x", "method", "time(s)", "pruning", "tau", "recall", "note",
    ];
    let mut cells: Vec<[String; 8]> = Vec::with_capacity(rows.len());
    for r in rows {
        cells.push([
            r.exp.clone(),
            r.x.clone(),
            r.method.clone(),
            fmt_opt(r.time_secs, 4),
            fmt_opt(r.pruning.map(|p| p * 100.0), 1),
            fmt_opt(r.tau, 3),
            fmt_opt(r.recall, 3),
            r.note.clone(),
        ]);
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in &cells {
        for (i, c) in row.iter().enumerate() {
            widths[i] = widths[i].max(c.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cols: &[String]| -> String {
        cols.iter()
            .enumerate()
            .map(|(i, c)| format!("{c:<w$}", w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cols: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cols));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in &cells {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

/// Renders rows as tab-separated values (for downstream plotting).
pub fn render_tsv(rows: &[Row]) -> String {
    let mut out = String::from("exp\tx\tmethod\ttime_secs\tpruning\ttau\trecall\tnote\n");
    for r in rows {
        out.push_str(&format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
            r.exp,
            r.x,
            r.method,
            fmt_opt(r.time_secs, 6),
            fmt_opt(r.pruning, 4),
            fmt_opt(r.tau, 4),
            fmt_opt(r.recall, 4),
            r.note
        ));
    }
    out
}

/// Formats a float for a hand-rolled JSON artifact: fixed decimals, with
/// non-finite values (∞ from a zero denominator, NaN from 0/0) emitted
/// as `null` — `{inf}`/`NaN` are not valid JSON tokens and would corrupt
/// the file. Shared by every `BENCH_*.json` writer so the rule cannot
/// drift between artifacts.
pub fn json_num(v: f64, decimals: usize) -> String {
    if v.is_finite() {
        format!("{v:.decimals$}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_rows() -> Vec<Row> {
        let mut a = Row::new("fig8", "k=1", "BF");
        a.time_secs = Some(1.234);
        a.pruning = Some(0.594);
        let mut b = Row::new("fig8", "k=1", "NL");
        b.time_secs = Some(2.0);
        b.tau = Some(0.859);
        b.recall = Some(0.933);
        vec![a, b]
    }

    #[test]
    fn table_contains_all_cells() {
        let t = render_table(&sample_rows());
        assert!(t.contains("BF"));
        assert!(t.contains("1.2340"));
        assert!(t.contains("59.4")); // pruning rendered as percent
        assert!(t.contains("0.859"));
        assert!(t.lines().count() >= 4);
    }

    #[test]
    fn tsv_has_header_and_rows() {
        let t = render_tsv(&sample_rows());
        assert_eq!(t.lines().count(), 3);
        assert!(t.starts_with("exp\t"));
    }

    #[test]
    fn missing_values_render_as_dash() {
        let t = render_table(&sample_rows());
        assert!(t.contains('-'));
    }
}
