//! Streaming throughput experiment: the incremental `popflow-serve`
//! engine vs. the recompute-per-slide baseline on an identical replayed
//! record stream — ingest throughput, advance latency (mean/p50/p99),
//! and a per-slide top-k equality audit.
//!
//! The workload is a visitor-turnover venue (see
//! [`indoor_sim::StreamScenario`]): tagged visitors pass through a
//! building all day, the standing query ranks the k most popular
//! S-locations over a sliding window of whole buckets, and the window
//! advances once per bucket.

use std::sync::Arc;
use std::time::Instant;

use indoor_iupt::{Record, Timestamp};
use indoor_model::SLocId;
use indoor_sim::{StreamScenario, World};
use popflow_core::{ContinuousEngine, FlowConfig, QuerySet, RecomputeEngine, WindowSpec};
use popflow_serve::{ServeConfig, ServeEngine};

use crate::report::Row;

use super::ExpOpts;

/// Full configuration of one streaming comparison.
#[derive(Debug, Clone)]
pub struct StreamingConfig {
    /// The replayed workload.
    pub scenario: StreamScenario,
    /// Bucket width in seconds.
    pub bucket_secs: i64,
    /// Window length in buckets (the window/bucket ratio).
    pub window_buckets: usize,
    /// Top-k size.
    pub k: usize,
    /// Serve-engine shard count.
    pub num_shards: usize,
}

impl StreamingConfig {
    /// The default comparison shape: a half-day visitor stream, 36-minute
    /// buckets, a 16-bucket window (ratio 16 ≥ 8), visits short relative
    /// to a bucket so most objects' records sit inside one bucket.
    /// `scale` multiplies the population (1.0 ≈ 3000 visitors).
    pub fn scaled(scale: f64, seed: u64) -> Self {
        StreamingConfig {
            scenario: StreamScenario {
                num_objects: ((3000.0 * scale) as usize).max(150),
                duration_secs: 12 * 3600,
                visit_secs: (60, 120),
                seed,
            },
            bucket_secs: 2160,
            window_buckets: 16,
            k: 5,
            num_shards: 4,
        }
    }
}

/// Measured behaviour of one engine over the replay.
#[derive(Debug, Clone)]
pub struct EngineMetrics {
    /// Engine display name.
    pub name: String,
    /// Records ingested.
    pub records: usize,
    /// Total wall-clock spent in `ingest` calls, seconds.
    pub ingest_secs: f64,
    /// Per-advance wall-clock latencies, milliseconds, in slide order.
    pub advance_ms: Vec<f64>,
    /// Per-slide top-k lists (for the equality audit).
    pub topks: Vec<Vec<SLocId>>,
    /// Presence computations performed across all slides (the work the
    /// bucketing scheme saves).
    pub presence_computations: u64,
}

impl EngineMetrics {
    /// Ingest throughput, records per second.
    pub fn records_per_sec(&self) -> f64 {
        if self.ingest_secs > 0.0 {
            self.records as f64 / self.ingest_secs
        } else {
            f64::INFINITY
        }
    }

    /// Mean advance latency in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        if self.advance_ms.is_empty() {
            return 0.0;
        }
        self.advance_ms.iter().sum::<f64>() / self.advance_ms.len() as f64
    }

    /// The `q` ∈ [0, 1] latency quantile in milliseconds (nearest-rank).
    pub fn quantile_ms(&self, q: f64) -> f64 {
        if self.advance_ms.is_empty() {
            return 0.0;
        }
        let mut sorted = self.advance_ms.clone();
        sorted.sort_by(f64::total_cmp);
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// Sustained query throughput: advances per second of advance time.
    pub fn advances_per_sec(&self) -> f64 {
        let total_secs = self.advance_ms.iter().sum::<f64>() / 1000.0;
        if total_secs > 0.0 {
            self.advance_ms.len() as f64 / total_secs
        } else {
            f64::INFINITY
        }
    }
}

/// The outcome of one streaming comparison.
#[derive(Debug, Clone)]
pub struct StreamingReport {
    /// The incremental sharded engine's measurements.
    pub incremental: EngineMetrics,
    /// The recompute-per-slide baseline's measurements.
    pub baseline: EngineMetrics,
    /// Window slides driven.
    pub slides: usize,
    /// Slides where the two engines' top-k lists differed (must be 0).
    pub mismatched_slides: usize,
    /// Baseline mean advance latency / incremental mean advance latency.
    pub speedup: f64,
    /// Baseline presence computations / incremental presence
    /// computations — the machine-independent version of the speedup.
    pub work_ratio: f64,
}

/// What [`drive_stream`] measured over one replay.
#[derive(Debug, Clone)]
pub struct DriveOutcome {
    /// Total wall-clock spent in `ingest` calls, seconds.
    pub ingest_secs: f64,
    /// Per-advance wall-clock latencies, milliseconds, in slide order.
    pub advance_ms: Vec<f64>,
    /// Per-slide top-k lists.
    pub topks: Vec<Vec<SLocId>>,
    /// Sum of per-slide `objects_computed` statistics.
    pub objects_computed: u64,
}

/// Drives one engine through the whole stream: per completed bucket,
/// feed the records up to the bucket end, then advance. Shared by the
/// experiment, the `serve_demo` example, and `bench_serve`.
pub fn drive_stream(
    engine: &mut dyn ContinuousEngine,
    records: &[Record],
    spec: WindowSpec,
    duration_secs: i64,
) -> DriveOutcome {
    let last_bucket = spec.last_complete_bucket(Timestamp::from_secs(duration_secs));
    let mut outcome = DriveOutcome {
        ingest_secs: 0.0,
        advance_ms: Vec::new(),
        topks: Vec::new(),
        objects_computed: 0,
    };
    let mut next = 0usize;
    for b in 0..=last_bucket {
        let now = spec.bucket_interval(b).end;
        let t0 = Instant::now();
        while next < records.len() && records[next].t <= now {
            engine
                .ingest(records[next].clone())
                .expect("replayed records are time-ordered");
            next += 1;
        }
        outcome.ingest_secs += t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let update = engine.advance(now).expect("advance on a valid stream");
        outcome.advance_ms.push(t1.elapsed().as_secs_f64() * 1000.0);
        outcome.objects_computed += update.outcome.stats.objects_computed as u64;
        outcome.topks.push(update.outcome.topk_slocs());
    }
    outcome
}

/// Runs the full comparison: generate the stream once, replay it through
/// both engines over identical bucket-aligned windows, audit every slide.
pub fn run_streaming(cfg: &StreamingConfig) -> StreamingReport {
    let (world, stream) = cfg.scenario.build();
    run_streaming_on(cfg, &world, stream.records())
}

/// [`run_streaming`] over an already-generated world and record stream.
pub fn run_streaming_on(
    cfg: &StreamingConfig,
    world: &World,
    records: &[Record],
) -> StreamingReport {
    let space = Arc::new(world.space.clone());
    let slocs: Vec<SLocId> = world.space.slocs().iter().map(|s| s.id).collect();
    let spec = WindowSpec::new(cfg.bucket_secs * 1000, cfg.window_buckets);
    let flow = FlowConfig::default().with_dp_engine();
    let duration = cfg.scenario.duration_secs;

    let mut serve = ServeEngine::new(
        Arc::clone(&space),
        ServeConfig::new(cfg.k, QuerySet::new(slocs.clone()), spec)
            .with_shards(cfg.num_shards)
            .with_flow(flow),
    );
    let driven = drive_stream(&mut serve, records, spec, duration);
    let incremental = EngineMetrics {
        name: serve.name().to_string(),
        records: records.len(),
        ingest_secs: driven.ingest_secs,
        advance_ms: driven.advance_ms,
        topks: driven.topks,
        presence_computations: serve.stats().fresh_presence,
    };
    drop(serve);

    let mut recompute =
        RecomputeEngine::new(Arc::clone(&space), cfg.k, QuerySet::new(slocs), spec, flow);
    let driven = drive_stream(&mut recompute, records, spec, duration);
    let baseline = EngineMetrics {
        name: recompute.name().to_string(),
        records: records.len(),
        ingest_secs: driven.ingest_secs,
        advance_ms: driven.advance_ms,
        topks: driven.topks,
        presence_computations: driven.objects_computed,
    };

    let slides = baseline.topks.len();
    let mismatched_slides = incremental
        .topks
        .iter()
        .zip(&baseline.topks)
        .filter(|(a, b)| a != b)
        .count();
    let speedup = if incremental.mean_ms() > 0.0 {
        baseline.mean_ms() / incremental.mean_ms()
    } else {
        f64::INFINITY
    };
    let work_ratio = if incremental.presence_computations > 0 {
        baseline.presence_computations as f64 / incremental.presence_computations as f64
    } else {
        f64::INFINITY
    };
    StreamingReport {
        incremental,
        baseline,
        slides,
        mismatched_slides,
        speedup,
        work_ratio,
    }
}

fn metrics_row(exp: &str, x: &str, m: &EngineMetrics) -> Row {
    let mut row = Row::new(exp, x, m.name.clone());
    row.time_secs = Some(m.mean_ms() / 1000.0);
    row.note = format!(
        "p50={:.2}ms p99={:.2}ms qps={:.0} ingest={:.0}rec/s presence×{}",
        m.quantile_ms(0.50),
        m.quantile_ms(0.99),
        m.advances_per_sec(),
        m.records_per_sec(),
        m.presence_computations,
    );
    row
}

/// The `streaming` experiment id: one comparison at the harness scale.
pub fn streaming(opts: &ExpOpts) -> Vec<Row> {
    let cfg = StreamingConfig::scaled(opts.scale, opts.seed);
    let report = run_streaming(&cfg);
    let x = format!(
        "w/b={} objs={}",
        cfg.window_buckets, cfg.scenario.num_objects
    );
    let mut rows = vec![
        metrics_row("streaming", &x, &report.incremental),
        metrics_row("streaming", &x, &report.baseline),
    ];
    let mut summary = Row::new("streaming", &x, "speedup");
    summary.note = format!(
        "advance×{:.1} work×{:.1} slides={} mismatches={}",
        report.speedup, report.work_ratio, report.slides, report.mismatched_slides
    );
    rows.push(summary);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature end-to-end comparison: both engines agree on every
    /// slide and the incremental engine does strictly less presence work.
    #[test]
    fn small_streaming_report_is_consistent() {
        let cfg = StreamingConfig {
            scenario: StreamScenario {
                num_objects: 40,
                duration_secs: 1800,
                visit_secs: (30, 80),
                seed: 11,
            },
            bucket_secs: 150,
            window_buckets: 8,
            k: 3,
            num_shards: 2,
        };
        let report = run_streaming(&cfg);
        assert_eq!(report.slides, 12);
        assert_eq!(report.mismatched_slides, 0, "engines diverged");
        assert!(
            report.incremental.presence_computations < report.baseline.presence_computations,
            "incremental did no less work: {} vs {}",
            report.incremental.presence_computations,
            report.baseline.presence_computations,
        );
        assert_eq!(report.incremental.records, report.baseline.records);
        assert!(report.incremental.records > 0);
    }
}
