//! Experiment runners regenerating every table and figure of the paper's
//! evaluation (§5). Each function returns [`Row`]s ready for rendering;
//! the `experiments` binary dispatches on experiment ids (see DESIGN.md §4
//! for the index).

pub mod ablation;
pub mod batch_scale;
pub mod real;
pub mod server_load;
pub mod store_footprint;
pub mod streaming;
pub mod synthetic;

use popflow_core::TkPlQuery;

use crate::lab::Lab;
use crate::method::Method;
use crate::report::Row;

/// Global experiment options.
#[derive(Debug, Clone)]
pub struct ExpOpts {
    /// Scale factor for the synthetic scenario (1.0 = the paper's 5K
    /// objects / 2 h — heavy; the binary defaults lower).
    pub scale: f64,
    /// Random (query set, window) draws averaged per measurement point
    /// (the paper uses 15–20).
    pub repeats: usize,
    /// Monte Carlo rounds on the real-analog data (paper: 900).
    pub mc_rounds_real: usize,
    /// Monte Carlo rounds on the synthetic data (paper: 25 000).
    pub mc_rounds_synthetic: usize,
    /// Base seed for workload draws.
    pub seed: u64,
    /// Concurrent registered queries for the streaming experiment's
    /// multi-query sharing audit (1 = single-query comparison only).
    pub queries: usize,
}

impl Default for ExpOpts {
    fn default() -> Self {
        ExpOpts {
            scale: 0.05,
            repeats: 3,
            mc_rounds_real: 200,
            mc_rounds_synthetic: 120,
            seed: 42,
            queries: 1,
        }
    }
}

/// Runs every method on every query and averages into one row per method.
pub(crate) fn run_point(
    lab: &mut Lab,
    exp: &str,
    x: &str,
    methods: &[Method],
    queries: &[TkPlQuery],
) -> Vec<Row> {
    let mut rows = Vec::with_capacity(methods.len());
    for &method in methods {
        let mut time = 0.0;
        let mut pruning = 0.0;
        let mut tau = 0.0;
        let mut rec = 0.0;
        let mut fallbacks = 0usize;
        for q in queries {
            let scored = lab.evaluate(method, q);
            time += scored.run.elapsed_secs;
            pruning += scored.run.outcome.stats.pruning_ratio();
            tau += scored.tau;
            rec += scored.recall;
            fallbacks += usize::from(scored.run.dp_fallback);
        }
        let n = queries.len().max(1) as f64;
        let mut row = Row::new(exp, x, method.name());
        row.time_secs = Some(time / n);
        row.pruning = Some(pruning / n);
        row.tau = Some(tau / n);
        row.recall = Some(rec / n);
        if fallbacks > 0 {
            row.note = format!("dp-fallback×{fallbacks}");
        }
        rows.push(row);
    }
    rows
}

/// Derives a per-(experiment, point, repeat) workload seed.
pub(crate) fn seed_for(opts: &ExpOpts, exp_tag: u64, point: u64, repeat: u64) -> u64 {
    opts.seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(exp_tag << 32)
        .wrapping_add(point << 16)
        .wrapping_add(repeat)
}
