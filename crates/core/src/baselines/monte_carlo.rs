//! The Monte Carlo baseline MC (§5.1): repeatedly instantiate a *certain*
//! IUPT by sampling one P-location per record according to the sample
//! probabilities, compute each query location's flow on the certain paths,
//! and rank by the average flow across rounds.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use indoor_iupt::{Iupt, SampleSet};
use indoor_model::{IndoorSpace, PLocId, SLocId};

use crate::presence::pair_pass_probability;
use crate::query::{rank_topk, QueryOutcome, SearchStats, TkPlQuery};

/// Monte Carlo configuration.
#[derive(Debug, Clone, Copy)]
pub struct MonteCarloConfig {
    /// Simulation rounds. The paper tunes 900 rounds on the real data and
    /// 25 000 on the synthetic data "for which the Kendall coefficient
    /// almost increases to a standstill".
    pub rounds: usize,
    /// RNG seed (the method is randomized; experiments fix it for
    /// reproducibility).
    pub seed: u64,
}

impl Default for MonteCarloConfig {
    fn default() -> Self {
        MonteCarloConfig {
            rounds: 900,
            seed: 0x4d43,
        }
    }
}

/// Evaluates a TkPLQ with the MC baseline. No data reduction is applied —
/// the paper groups MC with the no-reduction methods in Table 4.
pub fn monte_carlo(
    space: &IndoorSpace,
    iupt: &mut Iupt,
    query: &TkPlQuery,
    cfg: &MonteCarloConfig,
) -> QueryOutcome {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let sequences = iupt.sequences_in(query.interval);
    let objects_total = sequences.len();

    // Materialize per-object sample-set sequences once.
    let object_sets: Vec<Vec<&SampleSet>> = sequences
        .iter()
        .map(|seq| seq.records.iter().map(|r| r.samples).collect())
        .collect();

    let slocs = query.query_set.slocs();
    let mut sums = vec![0.0; slocs.len()];
    let mut certain: Vec<PLocId> = Vec::new();

    for _ in 0..cfg.rounds {
        for sets in &object_sets {
            certain.clear();
            certain.extend(sets.iter().map(|s| draw(&mut rng, s)));
            for (qi, &q) in slocs.iter().enumerate() {
                sums[qi] += certain_path_presence(space, &certain, q);
            }
        }
    }

    let scores: Vec<(SLocId, f64)> = slocs
        .iter()
        .zip(sums.iter())
        .map(|(&s, &sum)| (s, sum / cfg.rounds as f64))
        .collect();

    QueryOutcome {
        ranking: rank_topk(scores, query.k),
        stats: SearchStats {
            objects_total,
            objects_computed: objects_total,
            dp_fallback_objects: 0,
        },
    }
}

/// Samples one P-location from a sample set according to its
/// probabilities.
fn draw(rng: &mut StdRng, set: &SampleSet) -> PLocId {
    let samples = set.samples();
    if samples.len() == 1 {
        return samples[0].loc;
    }
    let mut u: f64 = rng.gen_range(0.0..1.0);
    for s in samples {
        if u < s.prob {
            return s.loc;
        }
        u -= s.prob;
    }
    samples.last().expect("sample sets are non-empty").loc
}

/// The presence of one certain path with respect to `q`: Eq. 2 over the
/// pairs that satisfy the indoor topology ("constructing valid object
/// paths on the certain records" — disconnected pairs, which arise because
/// independent per-record draws need not be consistent, contribute no pass
/// chance).
fn certain_path_presence(space: &IndoorSpace, locs: &[PLocId], q: SLocId) -> f64 {
    let mut miss = 1.0;
    for w in locs.windows(2) {
        if !space.matrix().connected(w[0], w[1]) {
            continue;
        }
        miss *= 1.0 - pair_pass_probability(space, w[0], w[1], q);
        if miss == 0.0 {
            break;
        }
    }
    1.0 - miss
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlowConfig;
    use crate::query::naive;
    use crate::query_set::QuerySet;
    use indoor_iupt::fixtures::paper_table2;
    use indoor_iupt::{TimeInterval, Timestamp};
    use indoor_model::fixtures::paper_figure1;

    fn interval() -> TimeInterval {
        TimeInterval::new(Timestamp::from_secs(1), Timestamp::from_secs(8))
    }

    #[test]
    fn converges_toward_uncertainty_aware_ranking() {
        let fig = paper_figure1();
        let query = TkPlQuery::new(2, QuerySet::new(vec![fig.r[0], fig.r[5]]), interval());
        let mut i1 = paper_table2();
        let mc = monte_carlo(
            &fig.space,
            &mut i1,
            &query,
            &MonteCarloConfig {
                rounds: 2000,
                seed: 42,
            },
        );
        // r6 clearly dominates r1 in the exact flows (1.97 vs 0.5); MC
        // must find the same order.
        assert_eq!(mc.ranking[0].sloc, fig.r[5]);
        assert!(mc.ranking[0].flow > mc.ranking[1].flow);
        // And the MC estimate of Θ(r6) is near the exact value.
        let mut i2 = paper_table2();
        let exact = naive(
            &fig.space,
            &mut i2,
            &query,
            &FlowConfig::default().without_reduction(),
        )
        .unwrap();
        let exact_r6 = exact.ranking[0].flow;
        assert!(
            (mc.ranking[0].flow - exact_r6).abs() < 0.25,
            "MC {} vs exact {exact_r6}",
            mc.ranking[0].flow
        );
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let fig = paper_figure1();
        let query = TkPlQuery::new(6, QuerySet::new(fig.r.to_vec()), interval());
        let cfg = MonteCarloConfig {
            rounds: 50,
            seed: 7,
        };
        let mut i1 = paper_table2();
        let a = monte_carlo(&fig.space, &mut i1, &query, &cfg);
        let mut i2 = paper_table2();
        let b = monte_carlo(&fig.space, &mut i2, &query, &cfg);
        assert_eq!(a.topk_slocs(), b.topk_slocs());
        for (x, y) in a.ranking.iter().zip(b.ranking.iter()) {
            assert_eq!(x.flow, y.flow);
        }
    }

    #[test]
    fn flows_bounded_by_object_count() {
        let fig = paper_figure1();
        let mut iupt = paper_table2();
        let query = TkPlQuery::new(6, QuerySet::new(fig.r.to_vec()), interval());
        let out = monte_carlo(
            &fig.space,
            &mut iupt,
            &query,
            &MonteCarloConfig {
                rounds: 100,
                seed: 1,
            },
        );
        for r in &out.ranking {
            assert!(r.flow <= 3.0 + 1e-9);
            assert!(r.flow >= 0.0);
        }
    }
}
