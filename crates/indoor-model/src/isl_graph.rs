use std::collections::HashMap;

use crate::building::Building;
use crate::cells::{CellDuo, DerivedCells};
use crate::ids::{CellId, PLocId};
use crate::locations::{PLocKind, PLocation};

/// An edge of the indoor space location graph: a cell pair (or a single
/// cell for loop edges) labeled with the P-locations that realize it.
#[derive(Debug, Clone)]
pub struct IslEdge {
    /// The connected cells; `len() == 1` encodes a loop edge `⟨ci, ci⟩`.
    pub cells: CellDuo,
    /// `ℓe`: the labeling P-locations — partitioning P-locations between
    /// the two cells for a proper edge, presence P-locations fully covered
    /// by the cell for a loop edge. Sorted by id.
    pub plocs: Vec<PLocId>,
}

impl IslEdge {
    /// Whether this is a loop edge `⟨ci, ci⟩`.
    pub fn is_loop(&self) -> bool {
        self.cells.len() == 1
    }
}

/// The indoor space location graph `GISL = (C, E, ℓe)` of §3.1.1: vertices
/// are cells, edges capture topological connectivity, and the labeling
/// function maps each edge to the P-locations realizing it.
///
/// The paper derives the equivalent-P-location merge (§3.1.2) from this
/// graph: all P-locations labeling one edge are interchangeable when
/// searching the indoor location matrix. [`crate::LocationMatrix`] exposes
/// those classes.
#[derive(Debug, Clone)]
pub struct IslGraph {
    edges: Vec<IslEdge>,
    edge_of_duo: HashMap<CellDuo, usize>,
    /// Edge indexes incident to each cell (loop edges included once).
    incident: Vec<Vec<usize>>,
    cell_count: usize,
}

impl IslGraph {
    /// Builds the graph from the building topology, derived cells, and the
    /// P-location set.
    pub fn build(building: &Building, cells: &DerivedCells, plocs: &[PLocation]) -> Self {
        let mut edge_of_duo: HashMap<CellDuo, usize> = HashMap::new();
        let mut edges: Vec<IslEdge> = Vec::new();

        let mut add_label = |duo: CellDuo, ploc: PLocId| {
            let idx = *edge_of_duo.entry(duo).or_insert_with(|| {
                edges.push(IslEdge {
                    cells: duo,
                    plocs: Vec::new(),
                });
                edges.len() - 1
            });
            edges[idx].plocs.push(ploc);
        };

        for p in plocs {
            match p.kind {
                PLocKind::Partitioning { door } => {
                    let d = building.door(door);
                    let ca = cells.cell_of_partition[d.a.index()];
                    let cb = cells.cell_of_partition[d.b.index()];
                    add_label(CellDuo::two(ca, cb), p.id);
                }
                PLocKind::Presence { partition } => {
                    let c = cells.cell_of_partition[partition.index()];
                    add_label(CellDuo::one(c), p.id);
                }
            }
        }

        for e in &mut edges {
            e.plocs.sort_unstable();
        }

        let cell_count = cells.cells.len();
        let mut incident = vec![Vec::new(); cell_count];
        for (idx, e) in edges.iter().enumerate() {
            for c in e.cells.iter() {
                incident[c.index()].push(idx);
            }
        }

        IslGraph {
            edges,
            edge_of_duo,
            incident,
            cell_count,
        }
    }

    /// All edges.
    pub fn edges(&self) -> &[IslEdge] {
        &self.edges
    }

    /// The edge for a cell pair / loop, if labeled by any P-location.
    pub fn edge(&self, duo: CellDuo) -> Option<&IslEdge> {
        self.edge_of_duo.get(&duo).map(|&i| &self.edges[i])
    }

    /// Edges incident to `cell` (loop edge included).
    pub fn incident_edges(&self, cell: CellId) -> impl Iterator<Item = &IslEdge> + '_ {
        self.incident[cell.index()].iter().map(|&i| &self.edges[i])
    }

    /// Neighboring cells reachable from `cell` through one labeled edge.
    pub fn neighbors(&self, cell: CellId) -> impl Iterator<Item = CellId> + '_ {
        self.incident_edges(cell)
            .filter(|e| !e.is_loop())
            .flat_map(move |e| e.cells.iter().filter(move |&c| c != cell))
    }

    /// Number of vertices (cells).
    pub fn cell_count(&self) -> usize {
        self.cell_count
    }

    /// Number of edges, loop edges included (the paper's `M = |E|`, the
    /// dimension of the merged location matrix).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Whether every cell can reach every other cell through proper edges.
    /// Useful as a sanity check on generated buildings: a disconnected
    /// graph means some rooms are unreachable for positioning transitions.
    pub fn is_connected(&self) -> bool {
        if self.cell_count == 0 {
            return true;
        }
        let mut seen = vec![false; self.cell_count];
        let mut stack = vec![CellId(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(c) = stack.pop() {
            for n in self.neighbors(c) {
                if !seen[n.index()] {
                    seen[n.index()] = true;
                    count += 1;
                    stack.push(n);
                }
            }
        }
        count == self.cell_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::building::BuildingBuilder;
    use crate::cells::derive_cells;
    use crate::ids::{FloorId, PartitionId};
    use crate::partition::PartitionKind;
    use indoor_geom::{Point, Rect};

    /// Two rooms + hallway; both room doors guarded, one presence P-location
    /// in the hallway.
    fn setup() -> (IslGraph, Vec<CellId>) {
        let mut b = BuildingBuilder::new();
        let room_a = b.partition(
            "a",
            FloorId(0),
            Rect::from_coords(0.0, 5.0, 5.0, 10.0),
            PartitionKind::Room,
        );
        let room_b = b.partition(
            "b",
            FloorId(0),
            Rect::from_coords(5.0, 5.0, 10.0, 10.0),
            PartitionKind::Room,
        );
        let hall = b.partition(
            "hall",
            FloorId(0),
            Rect::from_coords(0.0, 0.0, 10.0, 5.0),
            PartitionKind::Hallway,
        );
        let da = b.door(room_a, hall, Point::new(2.5, 5.0));
        let db = b.door(room_b, hall, Point::new(7.5, 5.0));
        let building = b.build().unwrap();
        let plocs = vec![
            PLocation {
                id: PLocId(0),
                pos: Point::new(2.5, 5.0),
                floor: FloorId(0),
                kind: PLocKind::Partitioning { door: da },
            },
            PLocation {
                id: PLocId(1),
                pos: Point::new(7.5, 5.0),
                floor: FloorId(0),
                kind: PLocKind::Partitioning { door: db },
            },
            PLocation {
                id: PLocId(2),
                pos: Point::new(5.0, 2.5),
                floor: FloorId(0),
                kind: PLocKind::Presence { partition: hall },
            },
        ];
        let derived = derive_cells(&building, &plocs);
        let cell_ids = [room_a, room_b, hall]
            .iter()
            .map(|p| derived.cell_of_partition[p.index()])
            .collect();
        (IslGraph::build(&building, &derived, &plocs), cell_ids)
    }

    #[test]
    fn builds_proper_and_loop_edges() {
        let (g, cells) = setup();
        assert_eq!(g.cell_count(), 3);
        assert_eq!(g.edge_count(), 3); // a–hall, b–hall, hall loop
        let loop_edge = g.edge(CellDuo::one(cells[2])).unwrap();
        assert!(loop_edge.is_loop());
        assert_eq!(loop_edge.plocs, vec![PLocId(2)]);
        let a_hall = g.edge(CellDuo::two(cells[0], cells[2])).unwrap();
        assert_eq!(a_hall.plocs, vec![PLocId(0)]);
        assert!(g.edge(CellDuo::two(cells[0], cells[1])).is_none());
    }

    #[test]
    fn neighbors_follow_proper_edges_only() {
        let (g, cells) = setup();
        let mut hall_neighbors: Vec<CellId> = g.neighbors(cells[2]).collect();
        hall_neighbors.sort();
        assert_eq!(hall_neighbors, vec![cells[0], cells[1]]);
        let a_neighbors: Vec<CellId> = g.neighbors(cells[0]).collect();
        assert_eq!(a_neighbors, vec![cells[2]]);
    }

    #[test]
    fn connectivity_detected() {
        let (g, _) = setup();
        assert!(g.is_connected());
    }

    #[test]
    fn disconnected_graph_detected() {
        // Two rooms with a guarded door but no P-location: no edges at all.
        let mut b = BuildingBuilder::new();
        let a = b.partition(
            "a",
            FloorId(0),
            Rect::from_coords(0.0, 0.0, 5.0, 5.0),
            PartitionKind::Room,
        );
        let c = b.partition(
            "c",
            FloorId(0),
            Rect::from_coords(10.0, 0.0, 15.0, 5.0),
            PartitionKind::Room,
        );
        let _ = (a, c);
        let building = b.build().unwrap();
        let derived = derive_cells(&building, &[]);
        let g = IslGraph::build(&building, &derived, &[]);
        assert_eq!(g.cell_count(), 2);
        assert!(!g.is_connected());
    }

    #[test]
    fn multiple_doors_same_cell_pair_share_edge() {
        let mut b = BuildingBuilder::new();
        let a = b.partition(
            "a",
            FloorId(0),
            Rect::from_coords(0.0, 0.0, 5.0, 5.0),
            PartitionKind::Room,
        );
        let c = b.partition(
            "c",
            FloorId(0),
            Rect::from_coords(5.0, 0.0, 10.0, 5.0),
            PartitionKind::Room,
        );
        let d1 = b.door(a, c, Point::new(5.0, 1.0));
        let d2 = b.door(a, c, Point::new(5.0, 4.0));
        let building = b.build().unwrap();
        let plocs = vec![
            PLocation {
                id: PLocId(0),
                pos: Point::new(5.0, 1.0),
                floor: FloorId(0),
                kind: PLocKind::Partitioning { door: d1 },
            },
            PLocation {
                id: PLocId(1),
                pos: Point::new(5.0, 4.0),
                floor: FloorId(0),
                kind: PLocKind::Partitioning { door: d2 },
            },
        ];
        let derived = derive_cells(&building, &plocs);
        let g = IslGraph::build(&building, &derived, &plocs);
        assert_eq!(g.edge_count(), 1);
        let duo = CellDuo::two(
            derived.cell_of_partition[a.index()],
            derived.cell_of_partition[c.index()],
        );
        // Both P-locations label the same edge → equivalent (p4 ≡ p9 in the
        // paper's Figure 1).
        assert_eq!(g.edge(duo).unwrap().plocs, vec![PLocId(0), PLocId(1)]);
        let _ = PartitionId(0);
    }
}
