//! Streaming replay: turns a generated world into the time-ordered record
//! stream a continuous serving engine ingests — the "simulated day"
//! workload of the `popflow-serve` experiments.
//!
//! A [`StreamScenario`] is a population moving through a building for a
//! configurable span (a full day by default, compressible for tests and
//! CI); [`RecordStream`] replays the resulting positioning records in
//! global timestamp order, exactly as a live deployment's sensor
//! pipeline would deliver them. The stream holds the world's columnar,
//! interned log (one `SetRef` per record, one arena copy per distinct
//! sample set — see `popflow-store`) rather than a row copy, so a
//! replayable stream costs a fraction of the old `Vec<Record>` clone.

use indoor_iupt::{Iupt, Record, RecordRef, StoreStats, TimeInterval};

use crate::building_gen::BuildingGenConfig;
use crate::mobility::MobilityConfig;
use crate::positioning::PositioningConfig;
use crate::scenario::{Scenario, World};

/// The default destination-choice skew, matching
/// [`MobilityConfig::tiny`].
const DEFAULT_SKEW: f64 = 0.9;

/// A streaming workload: `num_objects` visitors tracked over
/// `duration_secs` of simulated wall-clock time.
///
/// The population model is *visitor turnover* — each tagged object is in
/// the building only for a short visit, with visit starts spread
/// uniformly over the span (an exhibition, mall, or badge-in office
/// lobby: the workload RFID deployments actually see). Short visits are
/// what make a bucketed serving window effective: most objects' records
/// fall inside a single bucket, so slides reuse cached work.
#[derive(Debug, Clone)]
pub struct StreamScenario {
    /// Tracked population size over the whole span.
    pub num_objects: usize,
    /// Simulated span in seconds.
    pub duration_secs: i64,
    /// Visit-length range in seconds (an object's lifespan).
    pub visit_secs: (i64, i64),
    /// Zipf exponent skewing destination choice toward popular rooms
    /// (0 = uniform). Real visitor traffic is heavily skewed; high skew
    /// is also what makes bound-pruned serving shine — most locations'
    /// candidate counts never reach the top-k threshold.
    pub destination_skew: f64,
    /// Whether the positioning pipeline re-emits its cached WkNN answer
    /// while a visitor dwells at an unchanged position (see
    /// [`PositioningConfig::dwell_cache`]). On by default for stream
    /// workloads: connectivity-based indoor feeds are exactly this
    /// redundant, and the redundancy is what sample-set interning
    /// exploits.
    pub dwell_cache: bool,
    /// Master seed (re-derived per component).
    pub seed: u64,
}

impl StreamScenario {
    /// A full simulated day of tracking with 2–10 minute visits — the
    /// workload shape of a real deployment (sizeable: run in release
    /// builds).
    pub fn day(num_objects: usize, seed: u64) -> Self {
        StreamScenario {
            num_objects,
            duration_secs: 24 * 3600,
            visit_secs: (120, 600),
            destination_skew: DEFAULT_SKEW,
            dwell_cache: true,
            seed,
        }
    }

    /// A day compressed by `scale ∈ (0, 1]` in span (visits shortened
    /// with it), population kept as given — the CI-sized variant of
    /// [`StreamScenario::day`].
    pub fn compressed_day(num_objects: usize, scale: f64, seed: u64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let duration_secs = ((24.0 * 3600.0 * scale) as i64).max(120);
        StreamScenario {
            num_objects,
            duration_secs,
            visit_secs: (
                ((120.0 * scale.sqrt()) as i64).clamp(30, duration_secs),
                ((600.0 * scale.sqrt()) as i64).clamp(60, duration_secs),
            ),
            destination_skew: DEFAULT_SKEW,
            dwell_cache: true,
            seed,
        }
    }

    /// Overrides the visit-length range.
    pub fn with_visits(mut self, visit_secs: (i64, i64)) -> Self {
        assert!(visit_secs.0 >= 1 && visit_secs.0 <= visit_secs.1);
        self.visit_secs = visit_secs;
        self
    }

    /// Overrides the destination-choice skew (Zipf exponent; 0 =
    /// uniform).
    pub fn with_skew(mut self, destination_skew: f64) -> Self {
        assert!(destination_skew >= 0.0, "skew must be non-negative");
        self.destination_skew = destination_skew;
        self
    }

    /// Overrides the dwell-cache behaviour of the positioning pipeline.
    pub fn with_dwell_cache(mut self, dwell_cache: bool) -> Self {
        self.dwell_cache = dwell_cache;
        self
    }

    /// Expands into a full [`Scenario`]: a small venue whose visitors
    /// wander between rooms for the length of their visit, positioned
    /// with the paper's WkNN parameters.
    pub fn scenario(&self) -> Scenario {
        let mut mobility = MobilityConfig::tiny();
        mobility.num_objects = self.num_objects;
        mobility.duration_secs = self.duration_secs;
        mobility.destination_skew = self.destination_skew;
        mobility.lifespan_secs = (
            self.visit_secs.0.min(self.duration_secs),
            self.visit_secs.1.min(self.duration_secs),
        );
        // Visitors keep moving: short dwells relative to the visit.
        mobility.dwell_secs = (10, 45);
        let mut positioning = PositioningConfig::real_floor_analog();
        positioning.dwell_cache = self.dwell_cache;
        Scenario {
            building: BuildingGenConfig::tiny(),
            mobility,
            positioning,
        }
        .with_seed(self.seed)
    }

    /// Generates the world and its replayable record stream.
    pub fn build(&self) -> (World, RecordStream) {
        let world = World::generate(self.scenario());
        let stream = RecordStream::replay(&world);
        (world, stream)
    }
}

/// A time-ordered record stream replayed from a generated world.
///
/// Backed by the world's columnar interned log: reading the stream
/// yields zero-copy [`RecordRef`] views; an engine that needs ownership
/// materializes per record with [`RecordRef::to_record`] (the interned
/// copy on the far side deduplicates it right back).
#[derive(Debug, Clone)]
pub struct RecordStream {
    log: Iupt,
}

impl RecordStream {
    /// Replays the world's positioning table as a stream. The IUPT is
    /// already time-sorted (stable on ties), so the replay order is
    /// exactly the order a live pipeline would have delivered — and
    /// already interned, so this clones the columnar store, not one
    /// sample set per record.
    pub fn replay(world: &World) -> Self {
        RecordStream {
            log: world.iupt.clone(),
        }
    }

    /// Number of records in the stream.
    pub fn len(&self) -> usize {
        self.log.len()
    }

    /// Whether the stream holds no records.
    pub fn is_empty(&self) -> bool {
        self.log.is_empty()
    }

    /// Zero-copy view of the `i`-th record in delivery (time) order.
    pub fn get(&self, i: usize) -> RecordRef<'_> {
        self.log.view(i as u32)
    }

    /// First-to-last record timestamps.
    pub fn time_bounds(&self) -> Option<TimeInterval> {
        self.log.time_bounds()
    }

    /// Iterates the stream in delivery order, zero-copy.
    pub fn iter(&self) -> impl Iterator<Item = RecordRef<'_>> + '_ {
        self.log.iter()
    }

    /// Materializes the stream as owned records (clones every sample
    /// set) — only for consumers that genuinely need ownership of the
    /// whole stream at once.
    pub fn to_records(&self) -> Vec<Record> {
        self.log.to_records()
    }

    /// Footprint/interner accounting of the stream's columnar store.
    pub fn store_stats(&self) -> StoreStats {
        self.log.store_stats()
    }

    /// Bytes the pre-interning row layout would occupy for this stream
    /// (see [`Iupt::row_bytes`]).
    pub fn row_bytes(&self) -> usize {
        self.log.row_bytes()
    }

    /// Mean stream rate in records per simulated second.
    pub fn records_per_sec(&self) -> f64 {
        match self.time_bounds() {
            Some(b) if b.duration_millis() > 0 => {
                self.len() as f64 / (b.duration_millis() as f64 / 1000.0)
            }
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_time_ordered_and_complete() {
        let (world, stream) = StreamScenario::compressed_day(10, 0.005, 3).build();
        assert_eq!(stream.len(), world.iupt.len());
        assert!(!stream.is_empty());
        let records: Vec<_> = stream.iter().collect();
        assert!(records.windows(2).all(|w| w[0].t <= w[1].t));
        let bounds = stream.time_bounds().unwrap();
        assert!(bounds.end.as_secs() <= world.scenario.mobility.duration_secs);
        assert!(stream.records_per_sec() > 0.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let (_, a) = StreamScenario::compressed_day(8, 0.005, 9).build();
        let (_, b) = StreamScenario::compressed_day(8, 0.005, 9).build();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!((x.oid, x.t), (y.oid, y.t));
            assert_eq!(x.samples, y.samples);
        }
    }

    #[test]
    fn population_and_span_respected() {
        let sc = StreamScenario::compressed_day(12, 0.01, 1);
        assert_eq!(sc.num_objects, 12);
        let (world, stream) = sc.build();
        assert_eq!(world.trajectories.len(), 12);
        let objects: std::collections::HashSet<_> = stream.iter().map(|r| r.oid).collect();
        assert_eq!(objects.len(), 12);
        // Late windows still see traffic: at least one record lands in the
        // last quarter of the span.
        let span = world.scenario.mobility.duration_secs;
        assert!(stream.iter().any(|r| r.t.as_secs() >= span * 3 / 4));
    }

    #[test]
    fn full_day_scenario_shape() {
        let sc = StreamScenario::day(100, 7);
        assert_eq!(sc.duration_secs, 86_400);
        let scenario = sc.scenario();
        assert_eq!(scenario.mobility.num_objects, 100);
        assert_eq!(scenario.mobility.duration_secs, 86_400);
        assert!(scenario.positioning.dwell_cache);
    }

    /// The redundancy story end to end: a dwell-cached visitor stream
    /// interns materially fewer sets than it has records, and the
    /// columnar footprint undercuts the row layout it replaced. With the
    /// cache off, the same scenario yields (almost) no duplicates.
    #[test]
    fn dwell_cache_makes_interning_pay() {
        let sc = StreamScenario::compressed_day(12, 0.01, 5);
        let (_, cached) = sc.clone().build();
        let stats = cached.store_stats();
        assert!(
            stats.intern_hit_rate() > 0.1,
            "dwell caching produced almost no duplicate reports: {stats:?}"
        );
        assert!(
            stats.bytes < cached.row_bytes(),
            "interned stream not smaller than rows: {stats:?}"
        );
        let (_, uncached) = sc.with_dwell_cache(false).build();
        assert!(
            uncached.store_stats().intern_hit_rate() < stats.intern_hit_rate(),
            "disabling the dwell cache must reduce duplicate reports"
        );
    }
}
