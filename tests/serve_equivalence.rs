//! Engine-equivalence and throughput gates for the `popflow-serve`
//! incremental engine.
//!
//! The incremental engine's whole value rests on three claims, all
//! checked here mechanically rather than by eye:
//!
//! 1. **Exactness** — on every slide, over random scenarios and random
//!    window/bucket/shard configurations, both the eager and the
//!    bound-pruned incremental top-k equal the batch Nested-Loop result
//!    on the identical window, flow-bit for flow-bit (property test).
//! 2. **Speed** — at window/bucket ratio ≥ 8 the incremental engine's
//!    per-advance latency beats the recompute-per-slide baseline by ≥ 5×,
//!    with identical top-k lists on every slide (throughput experiment).
//! 3. **Pruning** — on a skewed visitor stream, bound-pruned advances
//!    perform strictly fewer presence computations than eager ones and
//!    actually skip candidate (object, location) cells.
//!
//! Run with: `cargo test -p popflow-eval --test serve_equivalence`

use std::sync::Arc;

use indoor_iupt::{Iupt, Record, Timestamp};
use indoor_sim::StreamScenario;
use popflow_core::{
    nested_loop, ContinuousEngine, FlowConfig, QuerySet, RecomputeEngine, TkPlQuery, WindowSpec,
};
use popflow_eval::experiments::streaming::{run_streaming, StreamingConfig};
use popflow_serve::{ServeConfig, ServeEngine};
use proptest::prelude::*;

/// Drives both serve strategies and the recompute baseline over one
/// generated world with the given geometry, asserting equal top-k lists,
/// bit-identical flows, and equal deltas on every bucket-aligned slide;
/// spot-checks one slide against a direct one-shot Nested-Loop query.
fn assert_equivalent(
    seed: u64,
    bucket_secs: i64,
    window_buckets: usize,
    num_shards: usize,
    k: usize,
) -> Result<(), TestCaseError> {
    let world = indoor_sim::World::generate(indoor_sim::Scenario::tiny().with_seed(seed));
    let space = Arc::new(world.space.clone());
    let slocs: Vec<_> = world.space.slocs().iter().map(|s| s.id).collect();
    let spec = WindowSpec::new(bucket_secs * 1000, window_buckets);
    // Alternate the normalization for extra coverage; DP engine keeps the
    // exponential path construction out of the hot loop.
    let flow = if seed % 2 == 0 {
        FlowConfig::default().with_dp_engine()
    } else {
        FlowConfig::default()
            .with_dp_engine()
            .with_full_product_normalization()
    };

    let serve_cfg = ServeConfig::new(k, QuerySet::new(slocs.clone()), spec)
        .with_shards(num_shards)
        .with_flow(flow);
    let mut serve = ServeEngine::new(Arc::clone(&space), serve_cfg.clone());
    let mut pruned = ServeEngine::new(Arc::clone(&space), serve_cfg.with_bound_pruning());
    let mut batch = RecomputeEngine::new(
        Arc::clone(&space),
        k,
        QuerySet::new(slocs.clone()),
        spec,
        flow,
    );

    let records: Vec<Record> = world.iupt.to_records();
    let duration = world.scenario.mobility.duration_secs;
    let last_bucket = spec.last_complete_bucket(Timestamp::from_secs(duration));
    let mut next = 0usize;
    let mut checked_one_shot = false;
    for b in 0..=last_bucket {
        // Advance at the instant bucket `b` completes (end + 1 ms).
        let now = Timestamp(spec.bucket_interval(b).end.millis() + 1);
        while next < records.len() && records[next].t <= now {
            serve.ingest(records[next].clone()).expect("ordered stream");
            pruned
                .ingest(records[next].clone())
                .expect("ordered stream");
            batch.ingest(records[next].clone()).expect("ordered stream");
            next += 1;
        }
        let a = serve.advance(now).expect("serve advance");
        let p = pruned.advance(now).expect("pruned advance");
        let c = batch.advance(now).expect("batch advance");
        prop_assert_eq!(&a.window, &c.window);
        prop_assert_eq!(a.outcome.topk_slocs(), c.outcome.topk_slocs());
        prop_assert_eq!(&a.entered, &c.entered);
        prop_assert_eq!(&a.left, &c.left);
        // The bound-pruned advance must agree not just on sets but on
        // flow bits: returned flows are computed exactly, only
        // sub-threshold locations are skipped.
        prop_assert_eq!(p.outcome.topk_slocs(), c.outcome.topk_slocs());
        for (x, y) in p.outcome.ranking.iter().zip(c.outcome.ranking.iter()) {
            prop_assert_eq!(x.flow.to_bits(), y.flow.to_bits());
        }
        prop_assert_eq!(&p.entered, &c.entered);
        prop_assert_eq!(&p.left, &c.left);

        // Mid-replay, pin one slide against a literal one-shot batch
        // query over the same records — guarding the baseline itself.
        if !checked_one_shot && b >= window_buckets as i64 {
            let mut iupt = Iupt::from_records(records[..next].to_vec());
            let one_shot = nested_loop(
                &world.space,
                &mut iupt,
                &TkPlQuery::new(k, QuerySet::new(slocs.clone()), a.window),
                &flow,
            )
            .expect("one-shot query");
            prop_assert_eq!(a.outcome.topk_slocs(), one_shot.topk_slocs());
            prop_assert_eq!(p.outcome.topk_slocs(), one_shot.topk_slocs());
            checked_one_shot = true;
        }
    }
    // Records in the final partial bucket are legitimately left unfed —
    // the window only ever covers complete buckets.
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random worlds × random window geometry × random sharding: both
    /// incremental strategies must match batch evaluation on every slide.
    #[test]
    fn incremental_topk_equals_batch_on_random_configs(
        seed in 0u64..10_000,
        bucket_secs in 20i64..150,
        window_buckets in 1usize..7,
        num_shards in 1usize..5,
        k in 1usize..6,
    ) {
        assert_equivalent(seed, bucket_secs, window_buckets, num_shards, k)?;
    }
}

/// The headline acceptance gate: ≥ 5× cheaper advances at window/bucket
/// ratio 16 (≥ 8), identical rankings throughout. Both the wall-clock
/// speedup and its machine-independent proxy (presence computations) are
/// asserted. The work ratios and the equality audit are deterministic and
/// asserted on every attempt; the wall-clock ratio (measured ≈ 7× on one
/// idle core) gets up to three attempts so a noisy neighbour cannot fail
/// a correct build — a real performance regression fails all three.
#[test]
fn incremental_advances_beat_recompute_5x_with_identical_topk() {
    let mut best_speedup: f64 = 0.0;
    for attempt in 1..=3 {
        let cfg = StreamingConfig::scaled(0.5, 0xbeef + attempt);
        assert!(
            cfg.window_buckets >= 8,
            "the gate is defined at window/bucket ratio ≥ 8"
        );
        let report = run_streaming(&cfg);
        assert!(report.slides >= 16, "too few slides: {}", report.slides);
        assert_eq!(
            report.mismatched_slides, 0,
            "attempt {attempt}: engines diverged on {} of {} slides",
            report.mismatched_slides, report.slides
        );
        assert!(
            report.work_ratio >= 5.0,
            "attempt {attempt}: presence-work ratio {:.2} below 5x (incremental {} vs baseline {})",
            report.work_ratio,
            report.incremental.presence_computations,
            report.baseline.presence_computations
        );
        // Bound pruning must never *add* presence-cell work over eager
        // evaluation on the identical stream.
        assert!(
            report.pruned.presence_cells <= report.incremental.presence_cells,
            "attempt {attempt}: pruning added work ({} vs {} cells)",
            report.pruned.presence_cells,
            report.incremental.presence_cells
        );
        best_speedup = best_speedup.max(report.speedup);
        if best_speedup >= 5.0 {
            return;
        }
        eprintln!(
            "attempt {attempt}: wall-clock speedup {:.2}x (incremental {:.3} ms vs baseline {:.3} ms), retrying",
            report.speedup,
            report.incremental.mean_ms(),
            report.baseline.mean_ms()
        );
    }
    panic!("wall-clock advance speedup {best_speedup:.2}x below 5x after 3 attempts");
}

/// The bound-pruning acceptance gate, on a *skewed* visitor stream
/// (popular locations dominate, so most locations' COUNT bounds never
/// reach the k-th exact flow): strictly fewer presence computations per
/// advance than the unpruned serve engine, with cells actually skipped
/// and rankings identical on every slide. Deterministic — the scenario
/// is seeded and the counters are exact.
#[test]
fn bound_pruning_beats_eager_on_skewed_stream() {
    let cfg = StreamingConfig {
        scenario: StreamScenario {
            num_objects: 220,
            duration_secs: 3 * 3600,
            visit_secs: (60, 120),
            destination_skew: 1.6,
            dwell_cache: true,
            seed: 0x5eed,
        },
        bucket_secs: 600,
        window_buckets: 8,
        k: 2,
        num_shards: 3,
    };
    let report = run_streaming(&cfg);
    assert!(report.slides >= 16, "too few slides: {}", report.slides);
    assert_eq!(
        report.mismatched_slides, 0,
        "bound-pruned engine diverged on {} of {} slides",
        report.mismatched_slides, report.slides
    );
    assert!(
        report.pruned.presence_cells < report.incremental.presence_cells,
        "bound pruning did not reduce presence work: {} pruned vs {} eager cells \
         over {} slides",
        report.pruned.presence_cells,
        report.incremental.presence_cells,
        report.slides
    );
    assert!(
        report.pruned.presence_skipped > 0,
        "no candidate cells were ever skipped: {:?}",
        report.pruned
    );
    // Per-advance, on average, the pruned engine must also win — the
    // per-run total cannot hide a regression behind slide count.
    let per_advance_pruned = report.pruned.presence_cells as f64 / report.slides as f64;
    let per_advance_eager = report.incremental.presence_cells as f64 / report.slides as f64;
    assert!(
        per_advance_pruned < per_advance_eager,
        "per-advance presence cells: pruned {per_advance_pruned:.1} vs eager {per_advance_eager:.1}"
    );
}
