use std::collections::HashMap;

use indoor_rtree::TimeIndex;
use popflow_store::{RecordStore, SetRef, StoreStats};

use crate::sample::SampleSet;
use crate::time::{TimeInterval, Timestamp};

/// Identifier of an indoor moving object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub u32);

impl ObjectId {
    /// Dense container index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ObjectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// One positioning record `(oid, X, t)` (§2.2): at time `t`, object `oid`'s
/// location is described by the sample set `X`.
///
/// This is the *transfer* shape — what streams deliver and `Iupt::push`
/// ingests. Inside the table the record is held columnar and its sample
/// set interned (see [`Iupt`]); reads come back as borrowed
/// [`RecordRef`] views, not owned `Record`s.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// The positioned object.
    pub oid: ObjectId,
    /// Positioning timestamp.
    pub t: Timestamp,
    /// The probabilistic sample set reported at `t`.
    pub samples: SampleSet,
}

/// Zero-copy view of one stored record: the scalar columns by value, the
/// sample set borrowed from the store's single interned copy.
///
/// Equality compares the record's *value* (`oid`, `t`, `samples`), not
/// [`RecordRef::set_ref`] — the handle is pool-local, so views of equal
/// records read from different tables (e.g. sharded vs. flat) compare
/// equal even though their pools numbered the set differently.
#[derive(Debug, Clone, Copy)]
pub struct RecordRef<'a> {
    /// The positioned object.
    pub oid: ObjectId,
    /// Positioning timestamp.
    pub t: Timestamp,
    /// Handle of the interned sample set in this table's pool — the key
    /// the kernel memo tables cache per-set work under. Pool-local:
    /// only meaningful against the [`Iupt`] that produced this view.
    pub set_ref: SetRef,
    /// Borrow of the interned sample set ([`SampleSetView`]).
    pub samples: SampleSetView<'a>,
}

/// Zero-copy access to an interned sample set — a borrow of the pool's
/// single arena copy (re-exported shape of
/// [`popflow_store::SampleSetView`]).
pub type SampleSetView<'a> = &'a SampleSet;

impl PartialEq for RecordRef<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.oid == other.oid && self.t == other.t && self.samples == other.samples
    }
}

impl RecordRef<'_> {
    /// Materializes an owned [`Record`] (clones the sample set) — the
    /// transfer shape for handing the record to another owner, e.g. a
    /// serve shard across a thread boundary.
    pub fn to_record(&self) -> Record {
        Record {
            oid: self.oid,
            t: self.t,
            samples: self.samples.clone(),
        }
    }
}

/// An object's positioning sequence within a query window: the records
/// ordered by time — the `X = (X1, …, Xn)` of §2.3.
#[derive(Debug, Clone)]
pub struct ObjectSequence<'a> {
    /// The object the sequence belongs to.
    pub oid: ObjectId,
    /// The object's records in the window, time-ordered.
    pub records: Vec<RecordRef<'a>>,
}

impl ObjectSequence<'_> {
    /// Sequence length `n`.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Upper bound on the number of possible paths,
    /// `Π 1..n |πl(Xi)|` (§3.2) — saturating, as it grows explosively.
    pub fn max_paths(&self) -> u128 {
        self.records
            .iter()
            .fold(1u128, |acc, r| acc.saturating_mul(r.samples.len() as u128))
    }
}

/// The Indoor Uncertain Positioning Table (IUPT): the append-only log of
/// positioning records, indexed on its time attribute by a 1D R-tree
/// (§3.3).
///
/// # Storage layout
///
/// Since the `popflow-store` port the table is a thin façade over a
/// columnar [`popflow_store::RecordStore`]: parallel `oid`/`t`/`set`
/// columns, with every sample set hash-consed through the store's
/// interner so identical reports (a dwelling device re-reporting the
/// same probabilistic position) share **one** arena-backed copy.
///
/// Two invariants carry the layers above:
///
/// * **Position stability** — the log is append-only; a record's `u32`
///   position (as returned in [`Iupt::sequence_positions_in`]) stays
///   valid as later records arrive. The `popflow-serve` bucket caches
///   hold positions across window slides on the strength of this.
/// * **Value-preserving interning** — [`Iupt::samples_at`] returns a
///   set equal to the one pushed, so flows computed over views are
///   bit-identical to flows over the original owned records.
#[derive(Debug, Clone, Default)]
pub struct Iupt {
    store: RecordStore<SampleSet>,
    index: TimeIndex<u32>,
}

/// Converts a raw store view into the table's typed [`RecordRef`] — the
/// one place the scalar columns pick up their domain types. Free
/// function (not a method) so the split-borrow call sites, which hold
/// `&RecordStore` while the time index is borrowed mutably, can use it.
fn record_ref(v: popflow_store::RecordView<'_, SampleSet>) -> RecordRef<'_> {
    RecordRef {
        oid: ObjectId(v.oid),
        t: Timestamp(v.t),
        set_ref: v.set_ref,
        samples: v.set,
    }
}

impl Iupt {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from records, sorting them by time (stable, so same-timestamp
    /// records keep insertion order).
    pub fn from_records(mut records: Vec<Record>) -> Self {
        records.sort_by_key(|r| r.t);
        let mut table = Iupt::new();
        for r in records {
            table.push(r);
        }
        table
    }

    /// Appends a record, interning its sample set; records must arrive in
    /// non-decreasing time order. Returns the record's (stable) position.
    pub fn push(&mut self, record: Record) -> u32 {
        let pos = self
            .store
            .push(record.oid.0, record.t.millis(), record.samples);
        self.index.push(record.t.millis(), pos);
        pos
    }

    /// Explicitly rebuilds the time index after a batch of appends (see
    /// [`TimeIndex::freeze`]), so subsequent range queries pay no lazy
    /// rebuild — the pattern the streaming ingestion path uses between
    /// record bursts.
    pub fn freeze(&mut self) {
        self.index.freeze();
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Zero-copy view of the record at `pos` (positions are dense, in
    /// time order).
    pub fn view(&self, pos: u32) -> RecordRef<'_> {
        record_ref(self.store.view(pos))
    }

    /// Zero-copy borrow of the sample set at `pos` — the accessor the
    /// serve shards use to resolve their cached record positions.
    pub fn samples_at(&self, pos: u32) -> SampleSetView<'_> {
        self.store.set(pos)
    }

    /// The interned-set handle at `pos`.
    pub fn set_ref_at(&self, pos: u32) -> SetRef {
        self.store.set_ref(pos)
    }

    /// Iterates all records in time (append) order, zero-copy.
    pub fn iter(&self) -> impl Iterator<Item = RecordRef<'_>> + '_ {
        (0..self.len() as u32).map(move |pos| self.view(pos))
    }

    /// Materializes the table as owned records (clones every sample set)
    /// — the transfer shape for re-ingesting the log elsewhere; prefer
    /// [`Iupt::iter`] for reading.
    pub fn to_records(&self) -> Vec<Record> {
        self.iter().map(|r| r.to_record()).collect()
    }

    /// Earliest and latest record timestamps.
    pub fn time_bounds(&self) -> Option<TimeInterval> {
        if self.is_empty() {
            return None;
        }
        let times = self.store.times();
        Some(TimeInterval::new(
            Timestamp(times[0]),
            Timestamp(times[times.len() - 1]),
        ))
    }

    /// Number of distinct objects in the table.
    pub fn object_count(&self) -> usize {
        let mut ids: Vec<u32> = self.store.oids().to_vec();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// Records within `[ts, te]` via the time index (Algorithm 2 line 1).
    pub fn range_query(&mut self, interval: TimeInterval) -> Vec<RecordRef<'_>> {
        let Iupt { store, index } = self;
        index
            .range_query(interval.start.millis(), interval.end.millis())
            .iter()
            .map(|&(_, i)| record_ref(store.view(i)))
            .collect()
    }

    /// The per-object hash table `HO : {oid} → {X}` of Algorithms 2–4:
    /// records in `[ts, te]` grouped by object, each group ordered by time.
    /// Groups are returned sorted by object id for deterministic iteration.
    pub fn sequences_in(&mut self, interval: TimeInterval) -> Vec<ObjectSequence<'_>> {
        let Iupt { store, index } = self;
        let hits = index.range_query(interval.start.millis(), interval.end.millis());
        let mut by_object: HashMap<ObjectId, Vec<RecordRef<'_>>> = HashMap::new();
        for &(_, i) in hits {
            let r = record_ref(store.view(i));
            by_object.entry(r.oid).or_default().push(r);
        }
        let mut seqs: Vec<ObjectSequence<'_>> = by_object
            .into_iter()
            .map(|(oid, records)| ObjectSequence { oid, records })
            .collect();
        seqs.sort_by_key(|s| s.oid);
        seqs
    }

    /// Like [`Iupt::sequences_in`], but returns record *positions* into
    /// the log instead of views, grouped by object id (ascending) with
    /// each group in time order. The log is append-only, so positions
    /// stay valid as later records arrive — callers that cache window
    /// slices (the `popflow-serve` bucket caches) hold these instead of
    /// cloning sample sets out of the log.
    pub fn sequence_positions_in(&mut self, interval: TimeInterval) -> Vec<(ObjectId, Vec<u32>)> {
        let Iupt { store, index } = self;
        let hits = index.range_query(interval.start.millis(), interval.end.millis());
        let mut by_object: HashMap<ObjectId, Vec<u32>> = HashMap::new();
        for &(_, i) in hits {
            by_object.entry(ObjectId(store.oid(i))).or_default().push(i);
        }
        let mut seqs: Vec<(ObjectId, Vec<u32>)> = by_object.into_iter().collect();
        seqs.sort_unstable_by_key(|(oid, _)| *oid);
        seqs
    }

    /// One object's sequence within the window.
    pub fn sequence_of(&mut self, oid: ObjectId, interval: TimeInterval) -> ObjectSequence<'_> {
        let Iupt { store, index } = self;
        let records = index
            .range_query(interval.start.millis(), interval.end.millis())
            .iter()
            .filter(|&&(_, i)| store.oid(i) == oid.0)
            .map(|&(_, i)| record_ref(store.view(i)))
            .collect();
        ObjectSequence { oid, records }
    }

    /// Summary statistics for reporting.
    pub fn stats(&self) -> IuptStats {
        let mut samples = 0usize;
        let mut max_set = 0usize;
        for &r in self.store.set_refs() {
            let len = self.store.pool().get(r).len();
            samples += len;
            max_set = max_set.max(len);
        }
        IuptStats {
            records: self.len(),
            objects: self.object_count(),
            total_samples: samples,
            max_sample_set_size: max_set,
        }
    }

    /// Footprint and interner accounting of the columnar store backing
    /// this table.
    pub fn store_stats(&self) -> StoreStats {
        self.store.stats()
    }

    /// Bytes the pre-interning row layout (a `Vec` of owned records)
    /// would occupy for the same content — the counterfactual the memory
    /// experiments report against (see
    /// [`popflow_store::RecordStore::row_bytes`]).
    pub fn row_bytes(&self) -> usize {
        self.store.row_bytes()
    }
}

/// Summary statistics of an [`Iupt`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IuptStats {
    /// Number of stored records.
    pub records: usize,
    /// Number of distinct objects.
    pub objects: usize,
    /// Total samples across all records.
    pub total_samples: usize,
    /// Largest single sample-set size.
    pub max_sample_set_size: usize,
}

impl std::fmt::Display for IuptStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} records from {} objects ({} samples, mss {})",
            self.records, self.objects, self.total_samples, self.max_sample_set_size
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::Sample;
    use indoor_model::PLocId;

    fn rec(oid: u32, t_secs: i64, locs: &[(u32, f64)]) -> Record {
        Record {
            oid: ObjectId(oid),
            t: Timestamp::from_secs(t_secs),
            samples: SampleSet::new(
                locs.iter()
                    .map(|&(l, pr)| Sample::new(PLocId(l), pr))
                    .collect(),
            )
            .unwrap(),
        }
    }

    fn table() -> Iupt {
        Iupt::from_records(vec![
            rec(1, 1, &[(4, 1.0)]),
            rec(2, 1, &[(1, 0.5), (2, 0.5)]),
            rec(3, 2, &[(2, 0.6), (3, 0.4)]),
            rec(1, 3, &[(9, 1.0)]),
            rec(2, 3, &[(2, 0.7), (4, 0.3)]),
            rec(1, 4, &[(8, 1.0)]),
            rec(2, 5, &[(5, 0.3), (6, 0.6), (8, 0.1)]),
            rec(3, 5, &[(2, 0.4), (3, 0.6)]),
            rec(2, 6, &[(5, 0.2), (6, 0.3), (8, 0.5)]),
            rec(3, 8, &[(3, 1.0)]),
        ])
    }

    #[test]
    fn counts_and_bounds() {
        let t = table();
        assert_eq!(t.len(), 10);
        assert_eq!(t.object_count(), 3);
        let b = t.time_bounds().unwrap();
        assert_eq!(b.start, Timestamp::from_secs(1));
        assert_eq!(b.end, Timestamp::from_secs(8));
        let st = t.stats();
        assert_eq!(st.max_sample_set_size, 3);
        assert_eq!(st.total_samples, 18);
    }

    #[test]
    fn range_query_filters_by_time() {
        let mut t = table();
        let iv = TimeInterval::new(Timestamp::from_secs(3), Timestamp::from_secs(5));
        let hits = t.range_query(iv);
        assert_eq!(hits.len(), 5);
        assert!(hits.iter().all(|r| iv.contains(r.t)));
    }

    #[test]
    fn sequences_grouped_and_ordered() {
        let mut t = table();
        let iv = TimeInterval::new(Timestamp::from_secs(1), Timestamp::from_secs(8));
        let seqs = t.sequences_in(iv);
        assert_eq!(seqs.len(), 3);
        assert_eq!(seqs[0].oid, ObjectId(1));
        assert_eq!(seqs[0].len(), 3);
        assert_eq!(seqs[1].len(), 4);
        assert_eq!(seqs[2].len(), 3);
        for s in &seqs {
            assert!(s.records.windows(2).all(|w| w[0].t <= w[1].t));
        }
    }

    #[test]
    fn sequence_positions_match_sequences() {
        let mut t = table();
        let iv = TimeInterval::new(Timestamp::from_secs(2), Timestamp::from_secs(6));
        let expected: Vec<(ObjectId, Vec<SampleSet>)> = t
            .sequences_in(iv)
            .iter()
            .map(|s| (s.oid, s.records.iter().map(|r| r.samples.clone()).collect()))
            .collect();
        let positions = t.sequence_positions_in(iv);
        assert_eq!(positions.len(), expected.len());
        for ((oid, idx), (eoid, esets)) in positions.iter().zip(&expected) {
            assert_eq!(oid, eoid);
            let got: Vec<SampleSet> = idx.iter().map(|&i| t.samples_at(i).clone()).collect();
            assert_eq!(&got, esets);
        }
    }

    #[test]
    fn sequence_of_single_object() {
        let mut t = table();
        let iv = TimeInterval::new(Timestamp::from_secs(1), Timestamp::from_secs(8));
        let s = t.sequence_of(ObjectId(3), iv);
        assert_eq!(s.len(), 3);
        assert_eq!(s.max_paths(), 2 * 2);
        let none = t.sequence_of(ObjectId(99), iv);
        assert!(none.is_empty());
        assert_eq!(none.max_paths(), 1);
    }

    #[test]
    fn from_records_sorts_by_time() {
        let t = Iupt::from_records(vec![rec(1, 5, &[(0, 1.0)]), rec(1, 2, &[(1, 1.0)])]);
        assert_eq!(t.view(0).t, Timestamp::from_secs(2));
    }

    #[test]
    fn empty_table_behaviour() {
        let mut t = Iupt::new();
        assert!(t.is_empty());
        assert!(t.time_bounds().is_none());
        let iv = TimeInterval::new(Timestamp(0), Timestamp(1000));
        assert!(t.sequences_in(iv).is_empty());
        assert_eq!(t.store_stats(), StoreStats::default());
    }

    /// The interning contract: identical sample sets pushed as separate
    /// records share one arena copy (pointer-identical views), positions
    /// stay stable across appends, and `to_records` round-trips the
    /// exact pushed content.
    #[test]
    fn interns_identical_sets_and_keeps_positions_stable() {
        let mut t = Iupt::new();
        let dup = rec(1, 1, &[(2, 0.5), (3, 0.5)]);
        let p0 = t.push(dup.clone());
        t.push(rec(2, 2, &[(4, 1.0)]));
        let p2 = t.push(Record {
            oid: ObjectId(3),
            t: Timestamp::from_secs(3),
            ..dup.clone()
        });
        // One interned copy serves both records.
        assert!(std::ptr::eq(t.samples_at(p0), t.samples_at(p2)));
        assert_eq!(t.set_ref_at(p0), t.set_ref_at(p2));
        let stats = t.store_stats();
        assert_eq!(stats.records, 3);
        assert_eq!(stats.sets_interned, 2);
        assert_eq!(stats.intern_hits, 1);
        assert!(
            stats.bytes < t.row_bytes(),
            "dedup must beat the row layout"
        );

        // Positions survive later appends.
        for i in 0..50 {
            t.push(rec(9, 10 + i, &[(1, 1.0)]));
        }
        assert_eq!(t.view(p0).samples, &dup.samples);
        assert_eq!(t.view(p0).oid, ObjectId(1));

        // Round-trip.
        let round = Iupt::from_records(t.to_records());
        assert_eq!(round.len(), t.len());
        for (a, b) in round.iter().zip(t.iter()) {
            assert_eq!(a, b);
        }
    }
}
