//! Scoped fork-join over a read-only item slice with a deterministic
//! in-order merge.

use std::sync::atomic::{AtomicUsize, Ordering};

/// How much parallelism an execution should use.
///
/// The configuration travels inside `popflow_core::FlowConfig`, so every
/// batch driver reads its thread count from the same place. The default
/// is one thread — serial execution, no threads spawned — which keeps
/// every existing call site byte-for-byte unchanged until a caller opts
/// in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Worker threads a parallel driver may fork (≥ 1 effective; 0 is
    /// treated as 1). Results are bit-identical at every thread count —
    /// this knob trades wall-clock only.
    pub threads: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig { threads: 1 }
    }
}

impl ExecConfig {
    /// A config with an explicit thread count.
    pub fn with_threads(threads: usize) -> Self {
        ExecConfig { threads }
    }

    /// A config using all available hardware parallelism (1 when the
    /// runtime cannot report it).
    pub fn auto() -> Self {
        ExecConfig {
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        }
    }

    /// The effective worker count for `items` work items.
    fn workers(&self, items: usize) -> usize {
        self.threads.max(1).min(items.max(1))
    }
}

/// Applies `f` to every item of `items` and returns the results **in
/// item order**, forking up to `exec.threads` scoped worker threads.
///
/// # Determinism contract
///
/// Items are claimed dynamically (an atomic cursor, so uneven per-item
/// cost balances across workers) but every item is processed exactly
/// once by a pure call `f(index, &items[index])`, and the merge reorders
/// results by item index. The returned vector is therefore identical —
/// including every floating-point bit of what `f` computed — at any
/// thread count, on any machine, under any scheduling. With one thread
/// (or one item) no threads are spawned at all.
///
/// # Panics
///
/// Propagates a panic from `f` (the scope joins all workers first).
pub fn par_map<T, R, F>(exec: ExecConfig, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    // One fork-join body for the whole crate: the infallible map is the
    // fallible one with an uninhabited error.
    match try_par_map::<_, _, std::convert::Infallible, _>(exec, items, |i, t| Ok(f(i, t))) {
        Ok(results) => results,
        Err(never) => match never {},
    }
}

/// [`par_map`] over fallible work: returns all results in item order, or
/// the error of the **lowest-indexed** failing item — the same error a
/// serial left-to-right loop would surface first, regardless of which
/// worker hit it or when.
///
/// Failure short-circuits: the serial path stops at the first error
/// exactly like a plain loop, and parallel workers stop claiming items
/// above the lowest failing index seen so far. Every item *below* that
/// index is still evaluated (a lower-indexed failure must win), so the
/// returned error stays deterministic while the work wasted after a
/// failure stays bounded by the items already in flight.
pub fn try_par_map<T, R, E, F>(exec: ExecConfig, items: &[T], f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    let workers = exec.workers(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let cursor = AtomicUsize::new(0);
    // Lowest item index known to have failed; items at or above it no
    // longer need evaluating. The true lowest failing index can never be
    // skipped: skipping requires an already-recorded failure at a lower
    // or equal index, and nothing fails below the lowest failure.
    let first_error = AtomicUsize::new(usize::MAX);
    let mut indexed: Vec<(usize, Result<R, E>)> = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, Result<R, E>)> = Vec::new();
                    loop {
                        // anlz:allow(atomic-ordering-audit): RMW-atomicity-only — claims need unique indices, nothing else; the scope join is the final synchronization
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        // Acquire/Release pair on the early-exit flag:
                        // the *decision to skip work* must observe the
                        // store that justified it, so the skip-set is a
                        // coherent prefix cut rather than a data race
                        // the scope join happens to paper over.
                        if i >= first_error.load(Ordering::Acquire) {
                            continue;
                        }
                        let result = f(i, &items[i]);
                        if result.is_err() {
                            first_error.fetch_min(i, Ordering::Release);
                        }
                        local.push((i, result));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            // Re-raise a worker panic with its original payload, so a
            // kernel's diagnostic message survives threading.
            match handle.join() {
                Ok(local) => indexed.extend(local),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    indexed.sort_unstable_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_item_order_at_every_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [0, 1, 2, 4, 7, 64] {
            let got = par_map(ExecConfig::with_threads(threads), &items, |i, &x| {
                assert_eq!(i as u64, x);
                x * x
            });
            assert_eq!(got, expect, "threads {threads}");
        }
    }

    #[test]
    fn more_threads_than_items() {
        let got = par_map(ExecConfig::with_threads(16), &[1, 2, 3], |_, &x| x + 1);
        assert_eq!(got, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        let got: Vec<i32> = par_map(ExecConfig::with_threads(4), &[] as &[i32], |_, &x| x);
        assert!(got.is_empty());
    }

    #[test]
    fn try_par_map_surfaces_first_error_in_item_order() {
        let items: Vec<u32> = (0..100).collect();
        for threads in [1, 3, 8] {
            let err = try_par_map(ExecConfig::with_threads(threads), &items, |_, &x| {
                if x % 10 == 7 {
                    Err(x)
                } else {
                    Ok(x)
                }
            })
            .unwrap_err();
            assert_eq!(err, 7, "threads {threads}");
        }
    }

    #[test]
    fn try_par_map_serial_path_short_circuits() {
        let evaluated = AtomicUsize::new(0);
        let items: Vec<u32> = (0..100).collect();
        let err = try_par_map(ExecConfig::with_threads(1), &items, |_, &x| {
            evaluated.fetch_add(1, Ordering::Relaxed);
            if x == 7 {
                Err(x)
            } else {
                Ok(x)
            }
        })
        .unwrap_err();
        assert_eq!(err, 7);
        // A plain left-to-right loop: items 0..=7 evaluated, nothing more.
        assert_eq!(evaluated.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn uneven_work_still_merges_in_order() {
        let items: Vec<u64> = (0..64).collect();
        let got = par_map(ExecConfig::with_threads(4), &items, |_, &x| {
            // Make early items much slower than late ones.
            let mut acc = 0u64;
            for i in 0..((64 - x) * 2_000) {
                acc = acc.wrapping_add(i ^ x);
            }
            (x, acc & 1)
        });
        let ids: Vec<u64> = got.iter().map(|&(x, _)| x).collect();
        assert_eq!(ids, items);
    }

    #[test]
    fn default_is_serial() {
        assert_eq!(ExecConfig::default().threads, 1);
        assert!(ExecConfig::auto().threads >= 1);
    }
}
