//! The serving engine: routes a time-ordered record stream to shard
//! workers and assembles incremental window evaluations into the same
//! top-k the batch Nested-Loop search would produce.

use std::collections::HashMap;
use std::sync::mpsc::{self, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

use indoor_iupt::{shard_for, Record, Timestamp};
use indoor_model::{IndoorSpace, SLocId};
use popflow_core::{
    diff_topk, rank_topk, ContinuousEngine, ContinuousUpdate, FlowConfig, FlowError,
    ObjectContribution, QueryOutcome, QuerySet, SearchStats, WindowSpec,
};

use crate::shard::{ShardMsg, ShardReport, ShardWorker};

/// Configuration of a [`ServeEngine`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Number of shard workers (threads). Objects are hash-partitioned
    /// across shards, so any count ≥ 1 yields identical results.
    pub num_shards: usize,
    /// Top-k size.
    pub k: usize,
    /// The standing query's S-location set.
    pub query_set: QuerySet,
    /// Bucket width and window length.
    pub spec: WindowSpec,
    /// Flow computation configuration (engine, normalization, reduction).
    pub flow: FlowConfig,
}

impl ServeConfig {
    /// A config with the given query shape and sensible defaults
    /// (4 shards, DP presence engine — the right engine for a serving
    /// path, where tail latency matters more than paper fidelity).
    pub fn new(k: usize, query_set: QuerySet, spec: WindowSpec) -> Self {
        ServeConfig {
            num_shards: 4,
            k,
            query_set,
            spec,
            flow: FlowConfig::default().with_dp_engine(),
        }
    }

    /// Overrides the shard count.
    pub fn with_shards(mut self, num_shards: usize) -> Self {
        self.num_shards = num_shards;
        self
    }

    /// Overrides the flow configuration.
    pub fn with_flow(mut self, flow: FlowConfig) -> Self {
        self.flow = flow;
        self
    }
}

/// Cumulative serving counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Records accepted and routed to a shard.
    pub records_ingested: u64,
    /// Records rejected (late or out of order).
    pub records_rejected: u64,
    /// Window advances served.
    pub advances: u64,
    /// Objects served from sealed-bucket caches, summed over advances.
    pub cache_hits: u64,
    /// Objects recomputed exactly as bucket straddlers.
    pub straddler_recomputes: u64,
    /// Presence computations performed (sealing + straddlers) — the
    /// quantity the bucketing scheme minimizes.
    pub fresh_presence: u64,
}

/// The sharded incremental continuous top-k engine.
///
/// Ingestion partitions records by object across `num_shards` worker
/// threads over `mpsc` channels; each worker owns its shard's IUPT
/// partition and sealed-bucket contribution caches. An
/// [`advance`](ContinuousEngine::advance) seals newly completed buckets,
/// combines cached per-object contributions across shards (recomputing
/// only bucket-straddling objects exactly), and ranks — producing, by
/// construction, the same accumulation order and therefore bit-identical
/// flows to running the batch Nested-Loop search over the same window.
///
/// ```
/// use std::sync::Arc;
/// use indoor_iupt::fixtures::paper_table2;
/// use indoor_iupt::Timestamp;
/// use indoor_model::fixtures::paper_figure1;
/// use popflow_core::{ContinuousEngine, FlowConfig, QuerySet, WindowSpec};
/// use popflow_serve::{ServeConfig, ServeEngine};
///
/// let fig = paper_figure1();
/// let cfg = ServeConfig::new(
///     2,
///     QuerySet::new(fig.r.to_vec()),
///     WindowSpec::new(4_000, 2), // two 4-second buckets
/// )
/// .with_flow(FlowConfig::default().with_full_product_normalization());
/// let mut engine = ServeEngine::new(Arc::new(fig.space.clone()), cfg);
/// for r in paper_table2().records() {
///     engine.ingest(r.clone()).unwrap();
/// }
/// let update = engine.advance(Timestamp::from_secs(8)).unwrap();
/// assert_eq!(update.outcome.ranking[0].sloc, fig.r[5]); // r6 (Example 4)
/// ```
#[derive(Debug)]
pub struct ServeEngine {
    config: ServeConfig,
    senders: Vec<Sender<ShardMsg>>,
    workers: Vec<JoinHandle<()>>,
    stats: ServeStats,
    previous: Option<Vec<SLocId>>,
    last_ingest: Option<Timestamp>,
    last_advance: Option<Timestamp>,
    /// Records must land strictly after the sealed frontier: once a
    /// bucket is sealed its cache is immutable, so a record falling into
    /// it would silently be ignored by future windows. Such late records
    /// are rejected at ingest instead.
    sealed_frontier_millis: Option<i64>,
}

impl ServeEngine {
    /// Spawns the shard worker pool. `space` is shared read-only with all
    /// workers.
    pub fn new(space: Arc<IndoorSpace>, config: ServeConfig) -> Self {
        assert!(config.num_shards >= 1, "need at least one shard");
        assert!(config.k >= 1, "k must be at least 1");
        let mut senders = Vec::with_capacity(config.num_shards);
        let mut workers = Vec::with_capacity(config.num_shards);
        for shard in 0..config.num_shards {
            let (tx, rx) = mpsc::channel();
            let worker = ShardWorker::new(
                Arc::clone(&space),
                config.query_set.clone(),
                config.flow,
                config.spec,
            );
            let handle = std::thread::Builder::new()
                .name(format!("popflow-shard-{shard}"))
                .spawn(move || worker.run(rx))
                .expect("spawning a shard worker thread");
            senders.push(tx);
            workers.push(handle);
        }
        ServeEngine {
            config,
            senders,
            workers,
            stats: ServeStats::default(),
            previous: None,
            last_ingest: None,
            last_advance: None,
            sealed_frontier_millis: None,
        }
    }

    /// Cumulative serving counters.
    pub fn stats(&self) -> ServeStats {
        self.stats
    }

    /// The engine configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Ingests a whole batch, stopping at the first rejected record.
    pub fn ingest_all<I: IntoIterator<Item = Record>>(
        &mut self,
        records: I,
    ) -> Result<(), FlowError> {
        for r in records {
            self.ingest(r)?;
        }
        Ok(())
    }

    fn check_ingest_time(&mut self, t: Timestamp) -> Result<(), FlowError> {
        if let Some(last) = self.last_ingest {
            if t < last {
                self.stats.records_rejected += 1;
                return Err(FlowError::TimeRegression {
                    last_millis: last.millis(),
                    offending_millis: t.millis(),
                });
            }
        }
        if let Some(frontier) = self.sealed_frontier_millis {
            if t.millis() < frontier {
                self.stats.records_rejected += 1;
                return Err(FlowError::TimeRegression {
                    last_millis: frontier,
                    offending_millis: t.millis(),
                });
            }
        }
        Ok(())
    }

    fn shard_down(&self, shard: usize) -> FlowError {
        FlowError::EngineUnavailable {
            detail: format!("shard worker {shard} is no longer running"),
        }
    }

    /// Merges shard reports into the global ranking, accumulating
    /// per-object contributions in ascending object-id order — the exact
    /// order (and therefore the exact floating-point sums) of the batch
    /// Nested-Loop search.
    fn merge_reports(&self, reports: Vec<ShardReport>) -> Result<QueryOutcome, FlowError> {
        let mut contributions: Vec<(indoor_iupt::ObjectId, Arc<ObjectContribution>)> = Vec::new();
        let mut objects_total = 0;
        let mut dp_fallback_objects = 0;
        for report in reports {
            if let Some(e) = report.error {
                return Err(e);
            }
            objects_total += report.objects_total;
            contributions.extend(report.contributions);
        }
        contributions.sort_unstable_by_key(|(oid, _)| *oid);

        let mut global: HashMap<SLocId, f64> = self
            .config
            .query_set
            .slocs()
            .iter()
            .map(|&s| (s, 0.0))
            .collect();
        let objects_computed = contributions.len();
        for (_, contribution) in &contributions {
            dp_fallback_objects += usize::from(contribution.dp_fallback);
            contribution.add_to(&mut global);
        }
        let scores: Vec<(SLocId, f64)> = global.into_iter().collect();
        Ok(QueryOutcome {
            ranking: rank_topk(scores, self.config.k),
            stats: SearchStats {
                objects_total,
                objects_computed,
                dp_fallback_objects,
            },
        })
    }
}

impl ContinuousEngine for ServeEngine {
    fn name(&self) -> &'static str {
        "popflow-serve"
    }

    fn ingest(&mut self, record: Record) -> Result<(), FlowError> {
        self.check_ingest_time(record.t)?;
        self.last_ingest = Some(record.t);
        let shard = shard_for(record.oid, self.senders.len());
        self.senders[shard]
            .send(ShardMsg::Ingest(record))
            .map_err(|_| self.shard_down(shard))?;
        self.stats.records_ingested += 1;
        Ok(())
    }

    fn advance(&mut self, now: Timestamp) -> Result<ContinuousUpdate, FlowError> {
        if let Some(last) = self.last_advance {
            if now < last {
                return Err(FlowError::TimeRegression {
                    last_millis: last.millis(),
                    offending_millis: now.millis(),
                });
            }
        }
        self.last_advance = Some(now);
        let (end_bucket, window) = self.config.spec.window_at(now);
        let window_start = end_bucket - self.config.spec.window_buckets as i64 + 1;

        let (tx, rx) = mpsc::channel();
        for (shard, sender) in self.senders.iter().enumerate() {
            sender
                .send(ShardMsg::Advance {
                    window_start,
                    window_end: end_bucket,
                    reply: tx.clone(),
                })
                .map_err(|_| self.shard_down(shard))?;
        }
        drop(tx);

        let mut reports = Vec::with_capacity(self.senders.len());
        for _ in 0..self.senders.len() {
            let report = rx.recv().map_err(|_| FlowError::EngineUnavailable {
                detail: "a shard worker died mid-advance".into(),
            })?;
            self.stats.cache_hits += report.cache_hits as u64;
            self.stats.straddler_recomputes += report.straddlers as u64;
            self.stats.fresh_presence += report.fresh_presence as u64;
            reports.push(report);
        }
        self.stats.advances += 1;
        // Buckets through `end_bucket` are now sealed engine-wide — even
        // if a shard reported an error below: some shards may have sealed
        // their caches, and accepting a late record into a sealed bucket
        // would silently corrupt every future window, which is worse than
        // rejecting a record no evaluation ever covered.
        let frontier = (end_bucket + 1) * self.config.spec.bucket_millis;
        self.sealed_frontier_millis = Some(
            self.sealed_frontier_millis
                .unwrap_or(frontier)
                .max(frontier),
        );

        let outcome = self.merge_reports(reports)?;
        let fresh = outcome.topk_slocs();
        let (changed, entered, left) = diff_topk(self.previous.as_deref(), &fresh);
        self.previous = Some(fresh);
        Ok(ContinuousUpdate {
            outcome,
            changed,
            entered,
            left,
            window,
        })
    }

    fn current(&self) -> Option<&[SLocId]> {
        self.previous.as_deref()
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        for sender in &self.senders {
            // A worker that already exited is fine.
            let _ = sender.send(ShardMsg::Shutdown);
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}
