//! `popflow-eval` — evaluation harness for the TKDE'19 reproduction:
//! effectiveness metrics (§5.1), a uniform timed runner over every method,
//! and experiment functions regenerating each table and figure of the
//! paper's evaluation (DESIGN.md §4 maps experiment ids to paper
//! artifacts).
//!
//! Run the whole suite or one experiment with the bundled binary:
//!
//! ```text
//! cargo run -p popflow-eval --release --bin experiments -- all --scale 0.05
//! cargo run -p popflow-eval --release --bin experiments -- fig8 table7
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod bench_json;
pub mod experiments;
pub mod lab;
pub mod method;
pub mod metrics;
pub mod report;
pub mod svg;

pub use experiments::ExpOpts;
pub use lab::{Lab, ScoredRun};
pub use method::{run_method, Method, MethodInput, MethodRun};
pub use metrics::{kendall_tau, recall};
pub use report::{render_table, render_tsv, Row};
