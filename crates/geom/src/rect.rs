use crate::Point;

/// An axis-aligned rectangle (also used as a minimum bounding rectangle).
///
/// Invariant: `min.x <= max.x && min.y <= max.y`. Degenerate rectangles
/// (zero width and/or height) are allowed — a point MBR is a valid `Rect`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Bottom-left corner (smallest x and y).
    pub min: Point,
    /// Top-right corner (largest x and y).
    pub max: Point,
}

impl Rect {
    /// Creates a rectangle from two corner points, normalizing the corner
    /// order so the invariant holds.
    pub fn new(a: Point, b: Point) -> Self {
        Rect {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// Creates a rectangle from `(min_x, min_y, max_x, max_y)`.
    pub fn from_coords(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        Rect::new(Point::new(min_x, min_y), Point::new(max_x, max_y))
    }

    /// The degenerate rectangle covering a single point.
    pub fn point(p: Point) -> Self {
        Rect { min: p, max: p }
    }

    /// Width along the x axis.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height along the y axis.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area; zero for degenerate rectangles.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Half-perimeter, the classic R-tree "margin" tie-breaker.
    #[inline]
    pub fn margin(&self) -> f64 {
        self.width() + self.height()
    }

    /// Geometric center.
    #[inline]
    pub fn center(&self) -> Point {
        self.min.midpoint(self.max)
    }

    /// Whether `p` lies inside or on the boundary.
    #[inline]
    pub fn contains_point(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Whether `p` lies strictly inside (boundary excluded).
    #[inline]
    pub fn contains_point_strict(&self, p: Point) -> bool {
        p.x > self.min.x && p.x < self.max.x && p.y > self.min.y && p.y < self.max.y
    }

    /// Whether `other` is fully contained (boundary-inclusive).
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        self.min.x <= other.min.x
            && self.min.y <= other.min.y
            && self.max.x >= other.max.x
            && self.max.y >= other.max.y
    }

    /// Whether the two rectangles overlap (boundary contact counts).
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
    }

    /// Intersection rectangle, or `None` when disjoint.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        Some(Rect {
            min: Point::new(self.min.x.max(other.min.x), self.min.y.max(other.min.y)),
            max: Point::new(self.max.x.min(other.max.x), self.max.y.min(other.max.y)),
        })
    }

    /// Smallest rectangle covering both operands.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            min: Point::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            max: Point::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        }
    }

    /// Grows the rectangle in place to cover `other`.
    pub fn expand(&mut self, other: &Rect) {
        *self = self.union(other);
    }

    /// How much [`Rect::area`] would grow if this rectangle were expanded to
    /// cover `other`; the R-tree insertion heuristic minimizes this.
    pub fn enlargement(&self, other: &Rect) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Smallest rectangle covering every rectangle produced by `iter`;
    /// `None` for an empty iterator.
    pub fn union_all<I: IntoIterator<Item = Rect>>(iter: I) -> Option<Rect> {
        let mut it = iter.into_iter();
        let first = it.next()?;
        Some(it.fold(first, |acc, r| acc.union(&r)))
    }

    /// Shrinks (negative `d`) or grows (positive `d`) every side by `d`,
    /// clamping so the result stays a valid rectangle.
    pub fn inset(&self, d: f64) -> Rect {
        let cx = self.center();
        let hw = (self.width() / 2.0 + d).max(0.0);
        let hh = (self.height() / 2.0 + d).max(0.0);
        Rect::from_coords(cx.x - hw, cx.y - hh, cx.x + hw, cx.y + hh)
    }

    /// Minimum distance from `p` to the rectangle (0 when inside).
    pub fn distance_to_point(&self, p: Point) -> f64 {
        let dx = (self.min.x - p.x).max(0.0).max(p.x - self.max.x);
        let dy = (self.min.y - p.y).max(0.0).max(p.y - self.max.y);
        (dx * dx + dy * dy).sqrt()
    }
}

impl std::fmt::Display for Rect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{:.2},{:.2} – {:.2},{:.2}]",
            self.min.x, self.min.y, self.max.x, self.max.y
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn r(a: f64, b: f64, c: f64, d: f64) -> Rect {
        Rect::from_coords(a, b, c, d)
    }

    #[test]
    fn normalizes_corners() {
        let rect = Rect::new(Point::new(3.0, 4.0), Point::new(1.0, 2.0));
        assert_eq!(rect, r(1.0, 2.0, 3.0, 4.0));
    }

    #[test]
    fn area_and_margin() {
        let rect = r(0.0, 0.0, 4.0, 3.0);
        assert_eq!(rect.area(), 12.0);
        assert_eq!(rect.margin(), 7.0);
        assert_eq!(rect.center(), Point::new(2.0, 1.5));
    }

    #[test]
    fn containment_boundaries() {
        let rect = r(0.0, 0.0, 2.0, 2.0);
        assert!(rect.contains_point(Point::new(0.0, 0.0)));
        assert!(rect.contains_point(Point::new(2.0, 2.0)));
        assert!(!rect.contains_point_strict(Point::new(0.0, 0.0)));
        assert!(rect.contains_point_strict(Point::new(1.0, 1.0)));
        assert!(!rect.contains_point(Point::new(2.0 + 1e-6, 1.0)));
    }

    #[test]
    fn intersection_cases() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        let b = r(1.0, 1.0, 3.0, 3.0);
        let c = r(5.0, 5.0, 6.0, 6.0);
        assert_eq!(a.intersection(&b), Some(r(1.0, 1.0, 2.0, 2.0)));
        assert_eq!(a.intersection(&c), None);
        // Boundary contact intersects with zero-area intersection.
        let d = r(2.0, 0.0, 4.0, 2.0);
        let touch = a.intersection(&d).unwrap();
        assert_eq!(touch.area(), 0.0);
    }

    #[test]
    fn union_all_of_empty_is_none() {
        assert_eq!(Rect::union_all(std::iter::empty()), None);
    }

    #[test]
    fn distance_to_point_inside_is_zero() {
        let rect = r(0.0, 0.0, 2.0, 2.0);
        assert_eq!(rect.distance_to_point(Point::new(1.0, 1.0)), 0.0);
        assert_eq!(rect.distance_to_point(Point::new(5.0, 1.0)), 3.0);
        assert!((rect.distance_to_point(Point::new(5.0, 6.0)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn inset_shrinks_and_clamps() {
        let rect = r(0.0, 0.0, 10.0, 4.0);
        assert_eq!(rect.inset(-1.0), r(1.0, 1.0, 9.0, 3.0));
        let collapsed = rect.inset(-10.0);
        assert_eq!(collapsed.width(), 0.0);
        assert_eq!(collapsed.height(), 0.0);
    }

    fn arb_rect() -> impl Strategy<Value = Rect> {
        (
            -100.0..100.0f64,
            -100.0..100.0f64,
            0.0..50.0f64,
            0.0..50.0f64,
        )
            .prop_map(|(x, y, w, h)| Rect::from_coords(x, y, x + w, y + h))
    }

    proptest! {
        #[test]
        fn union_contains_both(a in arb_rect(), b in arb_rect()) {
            let u = a.union(&b);
            prop_assert!(u.contains_rect(&a));
            prop_assert!(u.contains_rect(&b));
        }

        #[test]
        fn union_is_commutative(a in arb_rect(), b in arb_rect()) {
            prop_assert_eq!(a.union(&b), b.union(&a));
        }

        #[test]
        fn intersection_contained_in_both(a in arb_rect(), b in arb_rect()) {
            if let Some(i) = a.intersection(&b) {
                prop_assert!(a.contains_rect(&i));
                prop_assert!(b.contains_rect(&i));
                prop_assert!(a.intersects(&b));
            } else {
                prop_assert!(!a.intersects(&b));
            }
        }

        #[test]
        fn enlargement_nonnegative(a in arb_rect(), b in arb_rect()) {
            prop_assert!(a.enlargement(&b) >= -1e-9);
        }

        #[test]
        fn contains_rect_implies_intersects(a in arb_rect(), b in arb_rect()) {
            if a.contains_rect(&b) {
                prop_assert!(a.intersects(&b));
            }
        }
    }
}
