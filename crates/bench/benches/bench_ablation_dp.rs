//! Ablation (ours, DESIGN.md §2.3): the paper's path-enumeration presence
//! engine vs the exact transition DP inside the Nested-Loop search, over
//! growing Δt.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use popflow_bench::{query, synthetic_lab};
use popflow_core::{nested_loop, FlowConfig, PresenceEngine};

fn bench(c: &mut Criterion) {
    let mut lab = synthetic_lab();
    let mut group = c.benchmark_group("ablation_dp");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for dt in [5i64, 15, 30] {
        let q = query(&lab, 10, 0.08, dt, 100);
        for (engine, name) in [
            (PresenceEngine::Hybrid, "enumeration(hybrid)"),
            (PresenceEngine::TransitionDp, "transition-dp"),
        ] {
            let cfg = FlowConfig {
                engine,
                ..FlowConfig::default()
            };
            group.bench_with_input(BenchmarkId::new(name, format!("{dt}min")), &dt, |b, _| {
                b.iter(|| {
                    let (space, iupt) = lab.space_and_iupt();
                    nested_loop(space, iupt, &q, &cfg).unwrap().ranking.len()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
