//! The unified batch entry point: one [`TkplqRequest`] — the query's
//! *shape* (location set, `k`, flow configuration) without a time
//! interval — consumed by every TkPLQ search algorithm through the
//! [`BatchEngine`] trait.
//!
//! Historically each algorithm exposed its own free function taking
//! `(space, iupt, &TkPlQuery, &FlowConfig)`. Those functions still exist
//! as thin forwarding wrappers (call sites migrate incrementally), but
//! they all route through here, so drivers that sweep algorithms — the
//! evaluation harness, the serving registry's batch spot-checks — can
//! hold a `&dyn BatchEngine` instead of matching on function pointers.

use std::sync::Arc;

use indoor_iupt::{Iupt, TimeInterval};
use indoor_model::IndoorSpace;

use crate::config::{FlowConfig, FlowError};
use crate::memo::FlowMemo;
use crate::query::{best_first, naive, nested_loop, QueryOutcome, TkPlQuery};
use crate::query_set::QuerySet;

/// The engine-independent shape of a batch TkPLQ: what to rank, how many
/// to return, and how to compute presence — everything except *when*.
/// Pair it with a [`TimeInterval`] at [`BatchEngine::evaluate`] time.
#[derive(Debug, Clone)]
pub struct TkplqRequest {
    /// Top-k size (≥ 1; clamped to `|query_set|` at query construction).
    pub k: usize,
    /// The query's S-location set.
    pub query_set: QuerySet,
    /// Flow computation configuration (engine, normalization, reduction,
    /// parallelism).
    pub flow: FlowConfig,
    /// Optional shared kernel memo ([`FlowMemo`]). When attached (and
    /// [`FlowConfig::memo`] is on), the Nested-Loop engines serve and
    /// populate per-sequence kernel results through it, and the
    /// Best-First engines read it — so repeated or overlapping requests
    /// against the same store skip per-object kernels bit-identically.
    /// `None` (the default, and what [`TkplqRequest::from_query`]
    /// produces) evaluates every kernel from scratch; cross-request
    /// reuse requires explicitly attaching one memo to each request via
    /// [`TkplqRequest::with_memo`].
    pub memo: Option<Arc<FlowMemo>>,
}

impl TkplqRequest {
    /// A request with the default [`FlowConfig`].
    pub fn new(k: usize, query_set: QuerySet) -> Self {
        assert!(k >= 1, "k must be at least 1");
        TkplqRequest {
            k,
            query_set,
            flow: FlowConfig::default(),
            memo: None,
        }
    }

    /// Overrides the flow configuration.
    pub fn with_flow(mut self, flow: FlowConfig) -> Self {
        self.flow = flow;
        self
    }

    /// Attaches a shared kernel memo. Results stay bit-identical; only
    /// repeated kernel work is skipped.
    pub fn with_memo(mut self, memo: Arc<FlowMemo>) -> Self {
        self.memo = Some(memo);
        self
    }

    /// The request a classic `(query, cfg)` call pair describes.
    pub fn from_query(query: &TkPlQuery, cfg: &FlowConfig) -> Self {
        TkplqRequest {
            k: query.k,
            query_set: query.query_set.clone(),
            flow: *cfg,
            memo: None,
        }
    }

    /// The memo the engines should consult: the attached one, unless
    /// [`FlowConfig::memo`] turned memoization off.
    fn kernel_memo(&self) -> Option<&FlowMemo> {
        if self.flow.memo {
            self.memo.as_deref()
        } else {
            None
        }
    }

    /// Instantiates the classic [`TkPlQuery`] for `interval` (`k` clamped
    /// to `|query_set|` exactly as direct construction clamps it).
    pub fn query(&self, interval: TimeInterval) -> TkPlQuery {
        TkPlQuery::new(self.k, self.query_set.clone(), interval)
    }
}

/// A batch TkPLQ search algorithm: evaluates one [`TkplqRequest`] over
/// one time interval. All built-in engines return bit-identical flows
/// for the locations they rank (property-tested); they differ only in
/// work and pruning behaviour.
pub trait BatchEngine {
    /// Engine name for reports and experiment tables.
    fn name(&self) -> &'static str;

    /// Evaluates the request over `interval`.
    fn evaluate(
        &self,
        space: &IndoorSpace,
        iupt: &mut Iupt,
        request: &TkplqRequest,
        interval: TimeInterval,
    ) -> Result<QueryOutcome, FlowError>;

    /// Wraps this engine so every evaluation's wall-clock and
    /// [`SearchStats`](crate::query::SearchStats) land in `registry`
    /// under `batch.<name>.*` — the same export path the serving
    /// engine uses, so batch and serve telemetry share one snapshot.
    fn instrumented(self, registry: &popflow_obs::MetricsRegistry) -> Instrumented<Self>
    where
        Self: Sized,
    {
        Instrumented::new(self, registry)
    }
}

/// A [`BatchEngine`] decorator that records each evaluation into a
/// [`MetricsRegistry`](popflow_obs::MetricsRegistry): a
/// `batch.<name>.evaluate_ns` histogram plus the inner engine's
/// [`SearchStats`](crate::query::SearchStats) counters
/// (`evaluations`, `objects_total`, `objects_computed`,
/// `dp_fallback_objects`). The returned outcome is byte-for-byte the
/// inner engine's — instrumentation never perturbs results.
#[derive(Debug, Clone)]
pub struct Instrumented<E> {
    inner: E,
    registry: popflow_obs::MetricsRegistry,
    evaluate_ns: popflow_obs::Histogram,
}

impl<E: BatchEngine> Instrumented<E> {
    /// Wraps `inner`, resolving its metric handles in `registry`.
    pub fn new(inner: E, registry: &popflow_obs::MetricsRegistry) -> Self {
        let evaluate_ns = registry.histogram(&format!("batch.{}.evaluate_ns", inner.name()));
        Instrumented {
            inner,
            registry: registry.clone(),
            evaluate_ns,
        }
    }

    /// The wrapped engine.
    pub fn inner(&self) -> &E {
        &self.inner
    }
}

impl<E: BatchEngine> BatchEngine for Instrumented<E> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn evaluate(
        &self,
        space: &IndoorSpace,
        iupt: &mut Iupt,
        request: &TkplqRequest,
        interval: TimeInterval,
    ) -> Result<QueryOutcome, FlowError> {
        let timer = popflow_obs::Timer::start();
        let outcome = self.inner.evaluate(space, iupt, request, interval)?;
        timer.record_into(&self.evaluate_ns);
        outcome.stats.record_to(&self.registry, self.inner.name());
        Ok(outcome)
    }
}

/// The naive algorithm (§4 intro): one `flow` call per query location.
#[derive(Debug, Clone, Copy, Default)]
pub struct Naive;

/// The Nested-Loop search (§4.1, Algorithm 3).
#[derive(Debug, Clone, Copy, Default)]
pub struct NestedLoop;

/// [`NestedLoop`] with per-object kernels forked across
/// [`FlowConfig::exec`] threads; bit-identical to the serial driver.
#[derive(Debug, Clone, Copy, Default)]
pub struct NestedLoopPar;

/// The Best-First R-tree join (§4.2, Algorithm 4).
#[derive(Debug, Clone, Copy, Default)]
pub struct BestFirst;

/// [`BestFirst`] with a parallel bounds pass; bit-identical rankings.
#[derive(Debug, Clone, Copy, Default)]
pub struct BestFirstPar;

impl BatchEngine for Naive {
    fn name(&self) -> &'static str {
        "naive"
    }

    fn evaluate(
        &self,
        space: &IndoorSpace,
        iupt: &mut Iupt,
        request: &TkplqRequest,
        interval: TimeInterval,
    ) -> Result<QueryOutcome, FlowError> {
        naive::run(space, iupt, &request.query(interval), &request.flow)
    }
}

impl BatchEngine for NestedLoop {
    fn name(&self) -> &'static str {
        "nested-loop"
    }

    fn evaluate(
        &self,
        space: &IndoorSpace,
        iupt: &mut Iupt,
        request: &TkplqRequest,
        interval: TimeInterval,
    ) -> Result<QueryOutcome, FlowError> {
        nested_loop::run(
            space,
            iupt,
            &request.query(interval),
            &request.flow,
            request.kernel_memo(),
        )
    }
}

impl BatchEngine for NestedLoopPar {
    fn name(&self) -> &'static str {
        "nested-loop-par"
    }

    fn evaluate(
        &self,
        space: &IndoorSpace,
        iupt: &mut Iupt,
        request: &TkplqRequest,
        interval: TimeInterval,
    ) -> Result<QueryOutcome, FlowError> {
        nested_loop::run_par(
            space,
            iupt,
            &request.query(interval),
            &request.flow,
            request.kernel_memo(),
        )
    }
}

impl BatchEngine for BestFirst {
    fn name(&self) -> &'static str {
        "best-first"
    }

    fn evaluate(
        &self,
        space: &IndoorSpace,
        iupt: &mut Iupt,
        request: &TkplqRequest,
        interval: TimeInterval,
    ) -> Result<QueryOutcome, FlowError> {
        best_first::run(
            space,
            iupt,
            &request.query(interval),
            &request.flow,
            request.kernel_memo(),
        )
    }
}

impl BatchEngine for BestFirstPar {
    fn name(&self) -> &'static str {
        "best-first-par"
    }

    fn evaluate(
        &self,
        space: &IndoorSpace,
        iupt: &mut Iupt,
        request: &TkplqRequest,
        interval: TimeInterval,
    ) -> Result<QueryOutcome, FlowError> {
        best_first::run_par(
            space,
            iupt,
            &request.query(interval),
            &request.flow,
            request.kernel_memo(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indoor_iupt::fixtures::paper_table2;
    use indoor_iupt::Timestamp;
    use indoor_model::fixtures::paper_figure1;

    /// Every engine consumes the same request and returns the same
    /// ranking with bit-identical flows — and agrees with the classic
    /// free-function wrappers it now backs.
    #[test]
    fn all_engines_agree_on_one_request() {
        let fig = paper_figure1();
        let mut iupt = paper_table2();
        let interval = TimeInterval::new(Timestamp::from_secs(1), Timestamp::from_secs(8));
        let request = TkplqRequest::new(3, QuerySet::new(fig.r.to_vec()))
            .with_flow(FlowConfig::default().with_full_product_normalization());
        let engines: [&dyn BatchEngine; 5] = [
            &Naive,
            &NestedLoop,
            &NestedLoopPar,
            &BestFirst,
            &BestFirstPar,
        ];
        let reference = NestedLoop
            .evaluate(&fig.space, &mut iupt, &request, interval)
            .unwrap();
        assert_eq!(reference.ranking[0].sloc, fig.r[5]); // Example 4: r6 tops
        for engine in engines {
            let out = engine
                .evaluate(&fig.space, &mut iupt, &request, interval)
                .unwrap();
            assert_eq!(
                out.topk_slocs(),
                reference.topk_slocs(),
                "engine {}",
                engine.name()
            );
            for (a, b) in out.ranking.iter().zip(&reference.ranking) {
                assert_eq!(
                    a.flow.to_bits(),
                    b.flow.to_bits(),
                    "engine {}",
                    engine.name()
                );
            }
        }
        // The classic wrappers forward through the same entry point.
        let query = request.query(interval);
        let wrapped =
            crate::query::nested_loop(&fig.space, &mut iupt, &query, &request.flow).unwrap();
        assert_eq!(wrapped.topk_slocs(), reference.topk_slocs());
    }

    /// The instrumented wrapper returns bit-identical outcomes and
    /// routes `SearchStats` into the shared registry.
    #[test]
    fn instrumented_engine_matches_and_exports_stats() {
        let fig = paper_figure1();
        let mut iupt = paper_table2();
        let interval = TimeInterval::new(Timestamp::from_secs(1), Timestamp::from_secs(8));
        let request = TkplqRequest::new(3, QuerySet::new(fig.r.to_vec()));
        let plain = NestedLoop
            .evaluate(&fig.space, &mut iupt, &request, interval)
            .unwrap();
        let registry = popflow_obs::MetricsRegistry::new();
        let engine = NestedLoop.instrumented(&registry);
        assert_eq!(engine.name(), "nested-loop");
        let out = engine
            .evaluate(&fig.space, &mut iupt, &request, interval)
            .unwrap();
        assert_eq!(out.topk_slocs(), plain.topk_slocs());
        for (a, b) in out.ranking.iter().zip(&plain.ranking) {
            assert_eq!(a.flow.to_bits(), b.flow.to_bits());
        }
        engine
            .evaluate(&fig.space, &mut iupt, &request, interval)
            .unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.counters["batch.nested-loop.evaluations"], 2);
        assert_eq!(
            snap.counters["batch.nested-loop.objects_total"],
            2 * out.stats.objects_total as u64
        );
        assert_eq!(
            snap.counters["batch.nested-loop.objects_computed"],
            2 * out.stats.objects_computed as u64
        );
        assert_eq!(snap.histograms["batch.nested-loop.evaluate_ns"].count, 2);
    }

    /// A memo attached to the request leaves every engine's ranking and
    /// flows bit-identical while the Nested-Loop engines populate it and
    /// the Best-First engines serve from it read-only; turning
    /// [`FlowConfig::memo`] off bypasses the attached memo entirely.
    #[test]
    fn attached_memo_is_bit_identical_across_engines() {
        let fig = paper_figure1();
        let mut iupt = paper_table2();
        let interval = TimeInterval::new(Timestamp::from_secs(1), Timestamp::from_secs(8));
        for flow in [
            FlowConfig::default(),
            FlowConfig::default().with_dp_engine(),
            FlowConfig::default().without_reduction(),
            FlowConfig::default().with_full_product_normalization(),
        ] {
            let plain = TkplqRequest::new(6, QuerySet::new(fig.r.to_vec())).with_flow(flow);
            let memo = std::sync::Arc::new(crate::memo::FlowMemo::new());
            let memoized = plain.clone().with_memo(std::sync::Arc::clone(&memo));
            let reference = NestedLoop
                .evaluate(&fig.space, &mut iupt, &plain, interval)
                .unwrap();
            let engines: [&dyn BatchEngine; 4] =
                [&NestedLoop, &NestedLoopPar, &BestFirst, &BestFirstPar];
            for round in 0..2 {
                for engine in engines {
                    let out = engine
                        .evaluate(&fig.space, &mut iupt, &memoized, interval)
                        .unwrap();
                    assert_eq!(
                        out.topk_slocs(),
                        reference.topk_slocs(),
                        "engine {} round {round}",
                        engine.name()
                    );
                    for (a, b) in out.ranking.iter().zip(&reference.ranking) {
                        assert_eq!(
                            a.flow.to_bits(),
                            b.flow.to_bits(),
                            "engine {} round {round}",
                            engine.name()
                        );
                    }
                }
            }
            let stats = memo.stats();
            assert!(stats.hits > 0, "repeat rounds must hit: {stats:?}");
            assert!(stats.entries > 0 && stats.bytes > 0);

            // `memo: false` ignores the attachment: the memo sees no
            // further traffic and results are still bit-identical.
            let before = memo.stats();
            let off = memoized.clone().with_flow(flow.with_memo(false));
            let out = NestedLoop
                .evaluate(&fig.space, &mut iupt, &off, interval)
                .unwrap();
            for (a, b) in out.ranking.iter().zip(&reference.ranking) {
                assert_eq!(a.flow.to_bits(), b.flow.to_bits());
            }
            let after = memo.stats();
            assert_eq!(after.hits, before.hits);
            assert_eq!(after.misses, before.misses);
        }
    }

    #[test]
    fn request_clamps_k_at_query_time() {
        let fig = paper_figure1();
        let request = TkplqRequest::new(50, QuerySet::new(fig.r.to_vec()));
        let q = request.query(TimeInterval::new(Timestamp(0), Timestamp(10)));
        assert_eq!(q.k, fig.r.len());
    }
}
