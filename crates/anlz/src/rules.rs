//! The rule engine: five popflow-specific invariant rules evaluated
//! over the lexed token stream of one file.
//!
//! | id | rule |
//! |----|------|
//! | `nondeterministic-iteration` | `HashMap`/`HashSet` iteration in engine code not feeding an order-insensitive sink |
//! | `unordered-float-accumulation` | `f64` `sum`/`fold` over an unordered iterator in kernel paths |
//! | `panic-in-hot-path` | `unwrap`/`expect`/`panic!`/`unreachable!`/index-without-`get` in non-test engine code |
//! | `atomic-ordering-audit` | `Ordering::Relaxed` outside `crates/obs` without a justification pragma |
//! | `missing-crate-hygiene` | crate root missing `#![deny(missing_docs)]` / `#![forbid(unsafe_code)]` |
//!
//! All rules are heuristic and token-level by design (no parse tree —
//! see the crate docs); anything they over-report is suppressed with an
//! auditable `// anlz:allow(rule-id): reason` pragma, and anything they
//! under-report costs nothing that code review didn't already cost.
//! Every rule skips test code (`#[cfg(test)]`, `#[test]`, `mod tests`).

use crate::lexer::{lex, TokenKind};
use crate::pragma::{collect_allows, Allow};
use crate::scope::ScopeTracker;
use std::collections::BTreeSet;

/// Rule id for R1.
pub const RULE_NONDET_ITER: &str = "nondeterministic-iteration";
/// Rule id for R2.
pub const RULE_FLOAT_ACCUM: &str = "unordered-float-accumulation";
/// Rule id for R3.
pub const RULE_PANIC_HOT: &str = "panic-in-hot-path";
/// Rule id for R4.
pub const RULE_ATOMIC_ORDER: &str = "atomic-ordering-audit";
/// Rule id for R5.
pub const RULE_CRATE_HYGIENE: &str = "missing-crate-hygiene";
/// Pseudo-rule reported for pragma comments that fail to parse; it is
/// itself unsuppressable, so typo'd suppressions cannot hide findings.
pub const RULE_MALFORMED_PRAGMA: &str = "malformed-pragma";

/// All real rule ids, in report order.
pub const ALL_RULES: [&str; 5] = [
    RULE_NONDET_ITER,
    RULE_FLOAT_ACCUM,
    RULE_PANIC_HOT,
    RULE_ATOMIC_ORDER,
    RULE_CRATE_HYGIENE,
];

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule id (one of the `RULE_*` constants).
    pub rule: &'static str,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable explanation of this specific finding.
    pub message: String,
}

/// The analysis result for one file.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Workspace-relative path the file was analyzed as.
    pub path: String,
    /// Unsuppressed findings, sorted by (line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Findings silenced by an `anlz:allow` pragma, same order.
    pub suppressed: Vec<Diagnostic>,
    /// Every pragma in the file (for `--list-allows`).
    pub allows: Vec<Allow>,
}

/// A significant (non-whitespace, non-comment) token, annotated with
/// the scope-tracker state at its position.
struct STok {
    kind: TokenKind,
    start: usize,
    end: usize,
    line: u32,
    in_test: bool,
}

impl STok {
    fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

const ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// Idents that mark a statement's result as order-insensitive: sorts,
/// ordered collections, and aggregates that don't depend on visit
/// order. `sum`/`fold` are deliberately absent (they are R2's domain).
const ORDER_SINKS: [&str; 18] = [
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_by_cached_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "BTreeMap",
    "BTreeSet",
    "rank_topk",
    "count",
    "any",
    "all",
    "is_empty",
    "len",
    "contains",
    "contains_key",
    "binary_search",
];

const KEYWORDS: [&str; 35] = [
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "static", "struct", "super", "trait", "type", "unsafe", "use", "where",
    "while",
];

fn is_keyword(w: &str) -> bool {
    KEYWORDS.contains(&w)
}

/// Path predicates. Paths are workspace-relative with `/` separators —
/// [`crate::workspace`] produces them in that form.
mod paths {
    /// R1/R3 scope: the engine hot paths named by the rule spec, plus
    /// the network front-end (its reader/scheduler threads sit on the
    /// ingest path, so a panic there drops live connections).
    pub fn engine_hot_path(p: &str) -> bool {
        p.starts_with("crates/core/src/query/")
            || p == "crates/core/src/flow.rs"
            || p.starts_with("crates/serve/src/")
            || p.starts_with("crates/server/src/")
    }

    /// R2 scope: all kernel/serve code (a superset of the hot paths).
    pub fn kernel_path(p: &str) -> bool {
        p.starts_with("crates/core/src/") || p.starts_with("crates/serve/src/")
    }

    /// R4 scope: everywhere except the telemetry crate.
    pub fn ordering_audited(p: &str) -> bool {
        !p.starts_with("crates/obs/")
    }
}

/// Analyzes one file's source text.
///
/// `rel_path` selects which rules apply (see the `paths` module); it
/// does not have to exist on disk, which is what the fixture tests
/// rely on.
/// `is_crate_root` enables the crate-hygiene rule (R5).
pub fn analyze_source(rel_path: &str, src: &str, is_crate_root: bool) -> FileReport {
    let tokens = lex(src);
    let allow_set = collect_allows(&tokens, src);

    // Annotate significant tokens with scope state.
    let mut tracker = ScopeTracker::new();
    let mut sig: Vec<STok> = Vec::new();
    for tok in &tokens {
        tracker.observe(tok, src);
        if !matches!(
            tok.kind,
            TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
        ) {
            sig.push(STok {
                kind: tok.kind,
                start: tok.start,
                end: tok.end,
                line: tok.line,
                in_test: tracker.in_test(),
            });
        }
    }

    let mut raw: Vec<Diagnostic> = Vec::new();

    if paths::engine_hot_path(rel_path) || paths::kernel_path(rel_path) {
        check_hash_iteration(rel_path, &sig, src, &mut raw);
    }
    if paths::engine_hot_path(rel_path) {
        check_panics(&sig, src, &mut raw);
    }
    if paths::ordering_audited(rel_path) {
        check_relaxed_ordering(&sig, src, &mut raw);
    }
    if is_crate_root {
        check_crate_hygiene(&sig, src, &mut raw);
    }
    for m in &allow_set.malformed {
        raw.push(Diagnostic {
            rule: RULE_MALFORMED_PRAGMA,
            line: m.line,
            message: m.detail.clone(),
        });
    }

    raw.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));

    let mut report = FileReport {
        path: rel_path.to_string(),
        allows: allow_set.allows.clone(),
        ..FileReport::default()
    };
    for d in raw {
        let suppressed = match d.rule {
            // Hygiene is a whole-file property; its pragma lives
            // anywhere in the root file (conventionally next to the
            // attrs it excuses). Malformed pragmas are never
            // suppressable.
            RULE_CRATE_HYGIENE => allow_set.is_allowed_anywhere(d.rule),
            RULE_MALFORMED_PRAGMA => false,
            _ => allow_set.is_allowed(d.rule, d.line),
        };
        if suppressed {
            report.suppressed.push(d);
        } else {
            report.diagnostics.push(d);
        }
    }
    report
}

// ---------------------------------------------------------------------
// R1 + R2: hash-typed ident tracking and iteration detection
// ---------------------------------------------------------------------

/// Collects names of `fn`s in this file whose return type mentions
/// `HashMap`/`HashSet`, so `let x = window_presence(…)` marks `x`.
fn hash_returning_fns(sig: &[STok], src: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut i = 0;
    while i < sig.len() {
        if sig[i].kind == TokenKind::Ident && sig[i].text(src) == "fn" {
            let Some(name_tok) = sig.get(i + 1) else {
                break;
            };
            if name_tok.kind != TokenKind::Ident {
                i += 1;
                continue;
            }
            let name = name_tok.text(src).to_string();
            // Skip to the parameter list's matching `)`, then look for
            // `-> … HashMap/HashSet …` before the body `{` (or `;`).
            let mut j = i + 2;
            while j < sig.len() && sig[j].text(src) != "(" {
                j += 1;
            }
            let mut depth = 0i32;
            while j < sig.len() {
                match sig[j].text(src) {
                    "(" => depth += 1,
                    ")" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            let mut is_hash = false;
            let mut k = j + 1;
            while k < sig.len() {
                let t = sig[k].text(src);
                if t == "{" || t == ";" || t == "where" {
                    break;
                }
                if sig[k].kind == TokenKind::Ident && (t == "HashMap" || t == "HashSet") {
                    is_hash = true;
                }
                k += 1;
            }
            if is_hash {
                out.insert(name);
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    out
}

/// Marks idents that are hash-typed: `x: [&][mut] [path::]HashMap<…>`
/// annotations (let bindings, fn params, struct fields) and
/// `let x = <expr containing HashMap/HashSet or a hash-returning fn>`.
/// Later conflicting bindings unmark, so rebinding `let scores: Vec<_>`
/// clears an earlier hash mark.
fn hash_marked_idents(sig: &[STok], src: &str, hash_fns: &BTreeSet<String>) -> BTreeSet<String> {
    let mut marked: BTreeSet<String> = BTreeSet::new();
    let mut i = 0;
    while i < sig.len() {
        // `IDENT : <type>` — scan a short window of type-ish tokens.
        if sig[i].kind == TokenKind::Ident
            && !is_keyword(sig[i].text(src))
            && matches!(sig.get(i + 1), Some(t) if t.kind == TokenKind::Punct && t.text(src) == ":")
            && !matches!(sig.get(i + 2), Some(t) if t.text(src) == ":")
        {
            let name = sig[i].text(src).to_string();
            let mut verdict: Option<bool> = None;
            for j in i + 2..i + 12 {
                let Some(t) = sig.get(j) else { break };
                let text = t.text(src);
                match (t.kind, text) {
                    (TokenKind::Ident, "HashMap" | "HashSet") if matches!(sig.get(j + 1), Some(n) if n.text(src) == "<") =>
                    {
                        verdict = Some(true);
                        break;
                    }
                    (TokenKind::Ident, "mut") | (TokenKind::Lifetime, _) => {}
                    (TokenKind::Ident, _) => {
                        // A path segment: keep scanning through `::`.
                        if !matches!(sig.get(j + 1), Some(n) if n.text(src) == ":") {
                            verdict = Some(false);
                            break;
                        }
                    }
                    (TokenKind::Punct, "&" | ":") => {}
                    _ => {
                        verdict = Some(false);
                        break;
                    }
                }
            }
            match verdict {
                Some(true) => {
                    marked.insert(name);
                }
                Some(false) => {
                    marked.remove(&name);
                }
                None => {}
            }
            i += 1;
            continue;
        }
        // `let IDENT = <rhs>;` — mark if the rhs mentions a hash type
        // or calls a hash-returning fn.
        if sig[i].kind == TokenKind::Ident && sig[i].text(src) == "let" {
            let mut j = i + 1;
            if matches!(sig.get(j), Some(t) if t.text(src) == "mut") {
                j += 1;
            }
            let Some(name_tok) = sig.get(j) else { break };
            if name_tok.kind == TokenKind::Ident
                && matches!(sig.get(j + 1), Some(t) if t.kind == TokenKind::Punct && t.text(src) == "=")
                && !matches!(sig.get(j + 2), Some(t) if t.text(src) == "=")
            {
                let name = name_tok.text(src).to_string();
                let mut k = j + 2;
                let mut depth = 0i32;
                let mut is_hash = false;
                while let Some(t) = sig.get(k) {
                    let text = t.text(src);
                    match text {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        ";" if depth <= 0 => break,
                        _ => {}
                    }
                    if t.kind == TokenKind::Ident
                        && (text == "HashMap"
                            || text == "HashSet"
                            || (hash_fns.contains(text)
                                && matches!(sig.get(k + 1), Some(n) if n.text(src) == "(")))
                    {
                        is_hash = true;
                    }
                    k += 1;
                }
                if is_hash {
                    marked.insert(name);
                } else {
                    marked.remove(&name);
                }
            }
        }
        i += 1;
    }
    marked
}

/// R1/R2 detection: method-chain iteration (`m.iter()`, `m.values()`…)
/// and `for … in [&]m` over hash-marked idents.
fn check_hash_iteration(rel_path: &str, sig: &[STok], src: &str, out: &mut Vec<Diagnostic>) {
    let hash_fns = hash_returning_fns(sig, src);
    let marked = hash_marked_idents(sig, src, &hash_fns);
    if marked.is_empty() {
        return;
    }
    let r1 = paths::engine_hot_path(rel_path);

    for i in 0..sig.len() {
        if sig[i].in_test || sig[i].kind != TokenKind::Ident {
            continue;
        }
        let text = sig[i].text(src);

        // `MARKED . iter_method (`
        if marked.contains(text)
            && matches!(sig.get(i + 1), Some(t) if t.text(src) == ".")
            && matches!(sig.get(i + 2), Some(t) if t.kind == TokenKind::Ident
                && ITER_METHODS.contains(&t.text(src)))
            && matches!(sig.get(i + 3), Some(t) if t.text(src) == "(")
        {
            let method = sig[i + 2].text(src);
            let line = sig[i].line;
            let stmt = statement_span(sig, src, i);
            let floats = span_has_float_accum(sig, src, &stmt);
            if floats {
                out.push(Diagnostic {
                    rule: RULE_FLOAT_ACCUM,
                    line,
                    message: format!(
                        "float accumulation over unordered `{text}.{method}()`; f64 addition is \
                         not associative, so visit order changes the bits — collect and sort \
                         first, or accumulate over an ordered container"
                    ),
                });
            } else if r1 && !span_has_sink(sig, src, &stmt) {
                out.push(Diagnostic {
                    rule: RULE_NONDET_ITER,
                    line,
                    message: format!(
                        "iteration over unordered `{text}.{method}()` in engine code; feed it \
                         into a sort/BTreeMap on the same statement, switch the container to \
                         BTreeMap/BTreeSet, or justify with a pragma"
                    ),
                });
            }
            continue;
        }

        // `for PAT in [&][mut] MARKED {`
        if r1 && text == "for" {
            if let Some((name, line)) = for_loop_over(sig, src, i, &marked) {
                out.push(Diagnostic {
                    rule: RULE_NONDET_ITER,
                    line,
                    message: format!(
                        "`for` loop over unordered `{name}` in engine code; iterate a \
                         BTreeMap/BTreeSet or a sorted Vec instead, or justify with a pragma"
                    ),
                });
            }
        }
    }
}

/// If the `for` at `i` iterates a hash-marked ident directly
/// (`for p in &m {`), returns (ident, line of the ident).
fn for_loop_over(
    sig: &[STok],
    src: &str,
    i: usize,
    marked: &BTreeSet<String>,
) -> Option<(String, u32)> {
    // Find `in` at paren depth 0, bounded by the loop's `{`.
    let mut depth = 0i32;
    let mut j = i + 1;
    loop {
        let t = sig.get(j)?;
        match t.text(src) {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" if depth == 0 => return None,
            "in" if depth == 0 && t.kind == TokenKind::Ident => break,
            _ => {}
        }
        j += 1;
    }
    let mut k = j + 1;
    while matches!(sig.get(k), Some(t) if t.text(src) == "&" || t.text(src) == "mut") {
        k += 1;
    }
    let name_tok = sig.get(k)?;
    if name_tok.kind == TokenKind::Ident && marked.contains(name_tok.text(src)) {
        // Only the direct form: the `{` must follow immediately. Method
        // chains (`m.keys()`) are handled by the chain check.
        if matches!(sig.get(k + 1), Some(t) if t.text(src) == "{") {
            return Some((name_tok.text(src).to_string(), name_tok.line));
        }
    }
    None
}

/// The statement containing sig index `i`: backward to the previous
/// `;`/`{`/`}` and forward to the `;` or block-opening `{` that ends
/// it (tracking bracket depth forward so `;` inside closures don't cut
/// the span short).
fn statement_span(sig: &[STok], src: &str, i: usize) -> std::ops::Range<usize> {
    let mut start = i;
    while start > 0 {
        let t = &sig[start - 1];
        if t.kind == TokenKind::Punct && matches!(t.text(src), ";" | "{" | "}") {
            break;
        }
        start -= 1;
    }
    let mut end = i;
    let mut depth = 0i32;
    while let Some(t) = sig.get(end) {
        match t.text(src) {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" if depth == 0 => break,
            "{" => depth += 1,
            "}" => depth -= 1,
            ";" if depth <= 0 => break,
            _ => {}
        }
        end += 1;
    }
    start..end.min(sig.len())
}

/// True if the statement span contains an order-insensitive sink.
fn span_has_sink(sig: &[STok], src: &str, span: &std::ops::Range<usize>) -> bool {
    sig[span.clone()]
        .iter()
        .any(|t| t.kind == TokenKind::Ident && ORDER_SINKS.contains(&t.text(src)))
}

/// True if the statement span folds floats: `.sum()` / `.fold(` in the
/// chain (the R2 signal).
fn span_has_float_accum(sig: &[STok], src: &str, span: &std::ops::Range<usize>) -> bool {
    sig[span.clone()]
        .iter()
        .any(|t| t.kind == TokenKind::Ident && matches!(t.text(src), "sum" | "fold"))
}

// ---------------------------------------------------------------------
// R3: panics in hot paths
// ---------------------------------------------------------------------

fn check_panics(sig: &[STok], src: &str, out: &mut Vec<Diagnostic>) {
    for i in 0..sig.len() {
        if sig[i].in_test {
            continue;
        }
        let text = sig[i].text(src);
        match sig[i].kind {
            TokenKind::Ident if matches!(text, "unwrap" | "expect") => {
                let is_method = i > 0
                    && sig[i - 1].kind == TokenKind::Punct
                    && sig[i - 1].text(src) == "."
                    && matches!(sig.get(i + 1), Some(t) if t.text(src) == "(");
                if is_method {
                    out.push(Diagnostic {
                        rule: RULE_PANIC_HOT,
                        line: sig[i].line,
                        message: format!(
                            "`.{text}()` in engine hot path; the poisoning contract requires a \
                             FlowError/EngineUnavailable return — propagate the error, or prove \
                             unreachability in an `expect` message and pragma it"
                        ),
                    });
                }
            }
            TokenKind::Ident
                if matches!(text, "panic" | "unreachable" | "todo" | "unimplemented") =>
            {
                if matches!(sig.get(i + 1), Some(t) if t.text(src) == "!") {
                    out.push(Diagnostic {
                        rule: RULE_PANIC_HOT,
                        line: sig[i].line,
                        message: format!(
                            "`{text}!` in engine hot path; return a FlowError instead (or \
                             pragma with the invariant that makes this unreachable)"
                        ),
                    });
                }
            }
            TokenKind::Punct if text == "[" => {
                if let Some(d) = check_subscript(sig, src, i) {
                    out.push(d);
                }
            }
            _ => {}
        }
    }
}

/// Is the `[` at `i` an indexing subscript that can panic? Flags
/// `expr[idx]` where `expr` ends in an ident, `)`, or `]`; skips
/// attributes, macros (`vec![…]`), type positions, array literals, and
/// range subscripts (`&xs[1..]`, slicing is usually length-checked by
/// construction and drowns the signal).
fn check_subscript(sig: &[STok], src: &str, i: usize) -> Option<Diagnostic> {
    let prev = sig.get(i.checked_sub(1)?)?;
    let indexable = match prev.kind {
        TokenKind::Ident => !is_keyword(prev.text(src)),
        TokenKind::Punct => matches!(prev.text(src), ")" | "]"),
        _ => false,
    };
    if !indexable {
        return None;
    }
    // Scan the subscript body for `..` (a range → slicing, skipped).
    let mut depth = 0i32;
    let mut j = i;
    while let Some(t) = sig.get(j) {
        match t.text(src) {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            "." if depth == 1 => {
                let next = sig.get(j + 1)?;
                if next.text(src) == "." && next.start == t.end {
                    return None;
                }
            }
            _ => {}
        }
        j += 1;
    }
    Some(Diagnostic {
        rule: RULE_PANIC_HOT,
        line: sig[i].line,
        message: format!(
            "indexing `{}[…]` can panic in engine hot path; prefer `.get(…)` with error \
             propagation, or pragma with the invariant that bounds the index",
            prev.text(src)
        ),
    })
}

// ---------------------------------------------------------------------
// R4: Ordering::Relaxed audit
// ---------------------------------------------------------------------

fn check_relaxed_ordering(sig: &[STok], src: &str, out: &mut Vec<Diagnostic>) {
    for i in 0..sig.len() {
        if sig[i].in_test {
            continue;
        }
        if sig[i].kind == TokenKind::Ident
            && sig[i].text(src) == "Ordering"
            && matches!(sig.get(i + 1), Some(t) if t.text(src) == ":")
            && matches!(sig.get(i + 2), Some(t) if t.text(src) == ":")
            && matches!(sig.get(i + 3), Some(t) if t.kind == TokenKind::Ident
                && t.text(src) == "Relaxed")
        {
            out.push(Diagnostic {
                rule: RULE_ATOMIC_ORDER,
                line: sig[i].line,
                message: "`Ordering::Relaxed` outside crates/obs must carry a justification \
                          pragma naming why relaxed semantics are sufficient (telemetry-only, \
                          RMW-atomicity-only, …) — or be upgraded"
                    .to_string(),
            });
        }
    }
}

// ---------------------------------------------------------------------
// R5: crate-root hygiene
// ---------------------------------------------------------------------

fn check_crate_hygiene(sig: &[STok], src: &str, out: &mut Vec<Diagnostic>) {
    let mut has_missing_docs = false;
    let mut has_forbid_unsafe = false;
    // Look for inner attributes: `#` `!` `[` (deny|forbid) `(` lint `)`.
    for i in 0..sig.len() {
        if sig[i].text(src) != "#"
            || !matches!(sig.get(i + 1), Some(t) if t.text(src) == "!")
            || !matches!(sig.get(i + 2), Some(t) if t.text(src) == "[")
        {
            continue;
        }
        let Some(level) = sig.get(i + 3) else {
            continue;
        };
        let Some(lint) = sig.get(i + 5) else { continue };
        if !matches!(sig.get(i + 4), Some(t) if t.text(src) == "(") {
            continue;
        }
        match (level.text(src), lint.text(src)) {
            ("deny" | "forbid", "missing_docs") => has_missing_docs = true,
            ("forbid", "unsafe_code") => has_forbid_unsafe = true,
            _ => {}
        }
    }
    if !has_missing_docs {
        out.push(Diagnostic {
            rule: RULE_CRATE_HYGIENE,
            line: 1,
            message: "crate root lacks `#![deny(missing_docs)]`; every workspace crate \
                      documents its public surface (pragma the root if it genuinely cannot)"
                .to_string(),
        });
    }
    if !has_forbid_unsafe {
        out.push(Diagnostic {
            rule: RULE_CRATE_HYGIENE,
            line: 1,
            message: "crate root lacks `#![forbid(unsafe_code)]`; popflow is a forbid-unsafe \
                      workspace (pragma the root if an exception is unavoidable)"
                .to_string(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOT: &str = "crates/serve/src/virtual.rs";
    const KERNEL_ONLY: &str = "crates/core/src/kernels.rs";
    const COLD: &str = "crates/eval/src/lib.rs";

    fn rules_at(path: &str, src: &str) -> Vec<(&'static str, u32)> {
        analyze_source(path, src, false)
            .diagnostics
            .into_iter()
            .map(|d| (d.rule, d.line))
            .collect()
    }

    #[test]
    fn r1_fires_on_hash_values_iteration() {
        let src = "fn f(m: &HashMap<u32, i64>) -> Vec<i64> {\n    m.values().copied().collect()\n}";
        assert_eq!(rules_at(HOT, src), vec![(RULE_NONDET_ITER, 2)]);
    }

    #[test]
    fn r1_fires_on_for_loop_over_hash() {
        let src =
            "fn f(m: &HashMap<u32, i64>) {\n    for (k, v) in m {\n        use_it(k, v);\n    }\n}";
        assert_eq!(rules_at(HOT, src), vec![(RULE_NONDET_ITER, 2)]);
    }

    #[test]
    fn r1_quiet_when_feeding_sort() {
        let src = "fn f(m: &HashMap<u32, i64>) -> Vec<(u32, i64)> {\n    let mut v: Vec<_> = m.iter().map(|(k, v)| (*k, *v)).collect();\n    v.sort_unstable();\n    v\n}";
        // The sort is on the *next* statement here, so the collect line
        // still fires — same-statement chaining is what exempts.
        assert_eq!(rules_at(HOT, src), vec![(RULE_NONDET_ITER, 2)]);
        let chained = "fn f(m: &HashMap<u32, i64>) -> BTreeMap<u32, i64> {\n    m.iter().map(|(k, v)| (*k, *v)).collect::<BTreeMap<_, _>>()\n}";
        assert_eq!(rules_at(HOT, chained), vec![]);
    }

    #[test]
    fn r1_quiet_on_btreemap_and_outside_scope() {
        let src =
            "fn f(m: &BTreeMap<u32, i64>) -> Vec<i64> {\n    m.values().copied().collect()\n}";
        assert_eq!(rules_at(HOT, src), vec![]);
        let hash =
            "fn f(m: &HashMap<u32, i64>) -> Vec<i64> {\n    m.values().copied().collect()\n}";
        assert_eq!(rules_at(COLD, hash), vec![]);
    }

    #[test]
    fn r1_tracks_hash_returning_fn() {
        let src = "fn presence() -> HashMap<u32, i64> { todo() }\nfn f() {\n    let p = presence();\n    for (k, v) in &p {\n        use_it(k, v);\n    }\n}";
        assert_eq!(rules_at(HOT, src), vec![(RULE_NONDET_ITER, 4)]);
    }

    #[test]
    fn r1_rebinding_to_vec_unmarks() {
        let src = "fn f(m: &HashMap<u32, i64>) {\n    let m: Vec<i64> = sorted(m);\n    for v in &m {\n        use_it(v);\n    }\n}";
        assert_eq!(rules_at(HOT, src), vec![]);
    }

    #[test]
    fn r2_fires_on_float_sum_over_hash() {
        let src = "fn f(m: &HashMap<u32, f64>) -> f64 {\n    m.values().sum()\n}";
        assert_eq!(rules_at(KERNEL_ONLY, src), vec![(RULE_FLOAT_ACCUM, 2)]);
        // R2 outranks R1 in hot paths: one diagnostic, not two.
        assert_eq!(rules_at(HOT, src), vec![(RULE_FLOAT_ACCUM, 2)]);
    }

    #[test]
    fn r2_quiet_over_vec() {
        let src = "fn f(v: &[f64]) -> f64 {\n    v.iter().sum()\n}";
        assert_eq!(rules_at(KERNEL_ONLY, src), vec![]);
    }

    #[test]
    fn r3_fires_on_unwrap_expect_macros_and_indexing() {
        let src = "fn f(v: &[i64], m: &M) -> i64 {\n    let a = m.get(0).unwrap();\n    let b = m.get(1).expect(\"one\");\n    if a > b { panic!(\"no\"); }\n    v[3]\n}";
        assert_eq!(
            rules_at(HOT, src),
            vec![
                (RULE_PANIC_HOT, 2),
                (RULE_PANIC_HOT, 3),
                (RULE_PANIC_HOT, 4),
                (RULE_PANIC_HOT, 5),
            ]
        );
    }

    #[test]
    fn r3_quiet_in_tests_slices_and_cold_paths() {
        let test_src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); }\n}";
        assert_eq!(rules_at(HOT, test_src), vec![]);
        let slice = "fn f(v: &[i64]) -> &[i64] {\n    &v[1..]\n}";
        assert_eq!(rules_at(HOT, slice), vec![]);
        let attr = "#[derive(Debug)]\nstruct S { x: [f64; 2] }";
        assert_eq!(rules_at(HOT, attr), vec![]);
        let macro_idx = "fn f() -> Vec<i64> { vec![1, 2] }";
        assert_eq!(rules_at(HOT, macro_idx), vec![]);
        let cold = "fn f(m: &M) -> i64 { m.get(0).unwrap() }";
        assert_eq!(rules_at(COLD, cold), vec![]);
    }

    #[test]
    fn r3_doc_comment_unwrap_is_quiet() {
        let src = "/// Call `x.unwrap()` at your peril.\nfn f() {}";
        assert_eq!(rules_at(HOT, src), vec![]);
    }

    #[test]
    fn r4_fires_outside_obs_quiet_inside() {
        let src = "fn f(c: &AtomicU64) -> u64 {\n    c.load(Ordering::Relaxed)\n}";
        assert_eq!(rules_at(COLD, src), vec![(RULE_ATOMIC_ORDER, 2)]);
        assert_eq!(rules_at("crates/obs/src/metrics.rs", src), vec![]);
        let acq = "fn f(c: &AtomicU64) -> u64 {\n    c.load(Ordering::Acquire)\n}";
        assert_eq!(rules_at(COLD, acq), vec![]);
    }

    #[test]
    fn r5_requires_both_attrs() {
        let bare = "//! Docs.\npub fn f() {}";
        let diags = analyze_source(COLD, bare, true).diagnostics;
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().all(|d| d.rule == RULE_CRATE_HYGIENE));

        let good = "//! Docs.\n#![deny(missing_docs)]\n#![forbid(unsafe_code)]\npub fn f() {}";
        assert_eq!(analyze_source(COLD, good, true).diagnostics, vec![]);

        // `deny(unsafe_code)` is not enough — forbid is required.
        let weak = "#![deny(missing_docs)]\n#![deny(unsafe_code)]\npub fn f() {}";
        let diags = analyze_source(COLD, weak, true).diagnostics;
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("unsafe_code"));
    }

    #[test]
    fn pragma_suppresses_and_lands_in_suppressed() {
        let src = "fn f(m: &HashMap<u32, i64>) -> i64 {\n    // anlz:allow(nondeterministic-iteration): order erased by the max\n    m.values().copied().max().unwrap_or(0)\n}";
        let report = analyze_source(HOT, src, false);
        assert_eq!(report.diagnostics, vec![]);
        assert_eq!(report.suppressed.len(), 1);
        assert_eq!(report.allows.len(), 1);
    }

    #[test]
    fn malformed_pragma_is_reported_and_unsuppressable() {
        let src = "// anlz:allow(panic-in-hot-path)\nfn f() {}";
        let report = analyze_source(HOT, src, false);
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.diagnostics[0].rule, RULE_MALFORMED_PRAGMA);
    }
}
