//! Point-in-time metric snapshots: JSON round-trip, Prometheus text
//! exposition, and per-interval diffs.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::histogram::HistogramSnapshot;

/// A point-in-time copy of every metric in a
/// [`MetricsRegistry`](crate::MetricsRegistry).
///
/// Maps are ordered (`BTreeMap`), so two snapshots of the same state
/// serialize identically and [`Snapshot::to_json`] round-trips through
/// [`Snapshot::from_json`] exactly.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// True when every counter, gauge, and histogram is zero/empty.
    pub fn is_all_zero(&self) -> bool {
        self.counters.values().all(|&v| v == 0)
            && self.gauges.values().all(|&v| v == 0)
            && self.histograms.values().all(|h| h.is_empty())
    }

    /// Per-interval delta `self - earlier`.
    ///
    /// Counters and gauges subtract saturating; histogram buckets,
    /// counts, and sums subtract element-wise (a histogram whose count
    /// did not change comes back empty). Metrics absent from `earlier`
    /// keep their full value; metrics absent from `self` are dropped.
    /// `diff` of two identical snapshots is all-zero.
    pub fn diff(&self, earlier: &Snapshot) -> Snapshot {
        let sub = |map: &BTreeMap<String, u64>, old: &BTreeMap<String, u64>| {
            map.iter()
                .map(|(k, &v)| {
                    (
                        k.clone(),
                        v.saturating_sub(old.get(k).copied().unwrap_or(0)),
                    )
                })
                .collect()
        };
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| {
                let d = match earlier.histograms.get(k) {
                    Some(old) => h.diff(old),
                    None => h.clone(),
                };
                (k.clone(), d)
            })
            .collect();
        Snapshot {
            counters: sub(&self.counters, &earlier.counters),
            gauges: sub(&self.gauges, &earlier.gauges),
            histograms,
        }
    }

    /// Serializes to a single-line JSON object:
    /// `{"counters":{..},"gauges":{..},"histograms":{"name":{"count":..,"sum":..,"max":..,"buckets":[[i,c],..]},..}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"counters\":{");
        push_u64_map(&mut out, &self.counters);
        out.push_str("},\"gauges\":{");
        push_u64_map(&mut out, &self.gauges);
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{}:{{\"count\":{},\"sum\":{},\"max\":{},\"buckets\":[",
                json_string(name),
                h.count,
                h.sum,
                h.max
            );
            for (j, (index, count)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{index},{count}]");
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }

    /// Parses the format produced by [`Snapshot::to_json`].
    ///
    /// This is a minimal hand-rolled parser (the workspace is
    /// dependency-free): it accepts arbitrary whitespace but only the
    /// shapes `to_json` emits — string keys, unsigned-integer values,
    /// and `[index, count]` bucket pairs.
    pub fn from_json(input: &str) -> Result<Snapshot, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        let snap = p.parse_snapshot()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(snap)
    }

    /// Renders the Prometheus text exposition format: counters and
    /// gauges verbatim, histograms as summaries with
    /// `quantile="0.5|0.9|0.99|0.999"` labels plus `_sum`, `_count`,
    /// and `_max` series. Metric names are sanitized to
    /// `[a-zA-Z0-9_:]`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(512);
        for (name, value) in &self.counters {
            let n = sanitize_prometheus_name(name);
            let _ = writeln!(out, "# TYPE {n} counter\n{n} {value}");
        }
        for (name, value) in &self.gauges {
            let n = sanitize_prometheus_name(name);
            let _ = writeln!(out, "# TYPE {n} gauge\n{n} {value}");
        }
        for (name, h) in &self.histograms {
            let n = sanitize_prometheus_name(name);
            let _ = writeln!(out, "# TYPE {n} summary");
            for (label, q) in [("0.5", 0.5), ("0.9", 0.9), ("0.99", 0.99), ("0.999", 0.999)] {
                let _ = writeln!(out, "{n}{{quantile=\"{label}\"}} {}", h.quantile(q));
            }
            let _ = writeln!(out, "{n}_sum {}\n{n}_count {}", h.sum, h.count);
            let _ = writeln!(out, "# TYPE {n}_max gauge\n{n}_max {}", h.max);
        }
        out
    }
}

fn push_u64_map(out: &mut String, map: &BTreeMap<String, u64>) {
    for (i, (name, value)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{}", json_string(name), value);
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn sanitize_prometheus_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Minimal recursive-descent parser over the `to_json` grammar.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        match self.peek() {
            Some(b) if b == byte => {
                self.pos += 1;
                Ok(())
            }
            other => Err(format!(
                "expected '{}' at byte {}, found {:?}",
                byte as char,
                self.pos,
                other.map(|b| b as char)
            )),
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos).copied() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        other => return Err(format!("unsupported escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input came from &str).
                    let rest = &self.bytes[self.pos..];
                    let c = std::str::from_utf8(rest)
                        .map_err(|e| e.to_string())?
                        .chars()
                        .next()
                        .expect("non-empty rest");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_u64(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("expected digit at byte {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ascii digits")
            .parse()
            .map_err(|e| format!("bad integer: {e}"))
    }

    /// Parses `{ "k": <v>, ... }` with `f` handling each value.
    fn parse_object<T>(
        &mut self,
        mut f: impl FnMut(&mut Self) -> Result<T, String>,
    ) -> Result<BTreeMap<String, T>, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(map);
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            map.insert(key, f(self)?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(map);
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }

    fn parse_histogram(&mut self) -> Result<HistogramSnapshot, String> {
        let mut h = HistogramSnapshot::default();
        self.expect(b'{')?;
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            match key.as_str() {
                "count" => h.count = self.parse_u64()?,
                "sum" => h.sum = self.parse_u64()?,
                "max" => h.max = self.parse_u64()?,
                "buckets" => h.buckets = self.parse_buckets()?,
                other => return Err(format!("unknown histogram field {other:?}")),
            }
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(h);
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }

    fn parse_buckets(&mut self) -> Result<Vec<(u16, u64)>, String> {
        self.expect(b'[')?;
        let mut buckets = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(buckets);
        }
        loop {
            self.expect(b'[')?;
            let index = self.parse_u64()?;
            let index = u16::try_from(index).map_err(|_| format!("bucket index {index} > u16"))?;
            self.expect(b',')?;
            let count = self.parse_u64()?;
            self.expect(b']')?;
            buckets.push((index, count));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(buckets);
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn parse_snapshot(&mut self) -> Result<Snapshot, String> {
        let mut snap = Snapshot::default();
        self.expect(b'{')?;
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            match key.as_str() {
                "counters" => snap.counters = self.parse_object(Parser::parse_u64)?,
                "gauges" => snap.gauges = self.parse_object(Parser::parse_u64)?,
                "histograms" => snap.histograms = self.parse_object(Parser::parse_histogram)?,
                other => return Err(format!("unknown snapshot field {other:?}")),
            }
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(snap);
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    fn sample() -> Snapshot {
        let r = MetricsRegistry::new();
        r.counter("requests").add(17);
        r.counter("zero");
        r.gauge("bytes").set(u64::MAX);
        let h = r.histogram("latency_ns");
        for v in [0u64, 3, 15, 16, 17, 1024, 1_000_000, u64::MAX] {
            h.record(v);
        }
        r.snapshot()
    }

    #[test]
    fn json_round_trips_exactly() {
        let snap = sample();
        let json = snap.to_json();
        let back = Snapshot::from_json(&json).expect("parses");
        assert_eq!(back, snap);
        // Whitespace-tolerant.
        let spaced = json.replace(',', " ,\n ").replace(':', " : ");
        assert_eq!(Snapshot::from_json(&spaced).expect("parses"), snap);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let snap = Snapshot::default();
        assert_eq!(Snapshot::from_json(&snap.to_json()).unwrap(), snap);
    }

    #[test]
    fn diff_of_identical_snapshots_is_all_zero() {
        let snap = sample();
        let d = snap.diff(&snap);
        assert!(d.is_all_zero(), "diff not zero: {d:?}");
        // Same names survive so dashboards can still find them.
        assert_eq!(d.counters.len(), snap.counters.len());
        assert_eq!(d.histograms.len(), snap.histograms.len());
    }

    #[test]
    fn diff_yields_interval_deltas() {
        let r = MetricsRegistry::new();
        let c = r.counter("c");
        let h = r.histogram("h");
        c.add(10);
        h.record(5);
        let before = r.snapshot();
        c.add(7);
        h.record(500);
        let d = r.snapshot().diff(&before);
        assert_eq!(d.counters["c"], 7);
        assert_eq!(d.histograms["h"].count, 1);
        assert_eq!(d.histograms["h"].sum, 500);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let text = sample().to_prometheus();
        assert!(text.contains("# TYPE requests counter\nrequests 17\n"));
        assert!(text.contains("# TYPE bytes gauge\n"));
        assert!(text.contains("# TYPE latency_ns summary"));
        assert!(text.contains("latency_ns{quantile=\"0.99\"}"));
        assert!(text.contains("latency_ns_count 8"));
        // Dots sanitize to underscores.
        let r = MetricsRegistry::new();
        r.counter("serve.advance.total").inc();
        assert!(r
            .snapshot()
            .to_prometheus()
            .contains("serve_advance_total 1"));
    }

    #[test]
    fn malformed_json_is_rejected() {
        for bad in [
            "",
            "{",
            "{\"counters\":{\"a\":-1}}",
            "{\"bogus\":{}}",
            "{} trailing",
        ] {
            assert!(Snapshot::from_json(bad).is_err(), "accepted {bad:?}");
        }
    }
}
