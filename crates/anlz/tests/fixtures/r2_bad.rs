//! R2 known-bad fixture: float accumulation in hash iteration order.

use std::collections::HashMap;

fn total_flow(contributions: &HashMap<u64, f64>) -> f64 {
    contributions.values().sum()
}
