//! The serving engine: a registry of standing TkPLQ queries over one
//! shared, sharded record stream. Routes time-ordered records to shard
//! workers and assembles each registered query's incremental window
//! evaluation into the same top-k the batch Nested-Loop search would
//! produce — bit-identical flows, for every query, under both advance
//! strategies.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

use indoor_iupt::{ObjectId, Record, Timestamp};
use indoor_model::{IndoorSpace, SLocId};
use popflow_core::{
    diff_topk, rank_topk, ContinuousEngine, ContinuousUpdate, FlowConfig, FlowError, LocationBound,
    ObjectContribution, QueryId, QueryOutcome, QuerySet, QuerySpec, SearchStats, ThresholdHeap,
    ThresholdStep, WindowSpec,
};
use popflow_exec::{Reply, ShardDown, ShardPool};
use popflow_obs::{Counter, Gauge, Histogram, MetricsRegistry, Timer};

use crate::metric_names as names;
use crate::shard::{EagerReport, EvalReport, ShardWorker};
use crate::trace::{AdvanceTrace, QueryTrace, ShardTrace};

/// One merged window of an eager advance: the union-wide flow map plus
/// the shared [`SearchStats`] reported for every query on that window.
type WindowScores = (HashMap<SLocId, f64>, SearchStats);

/// How an advance turns sealed buckets into a ranking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdvanceStrategy {
    /// Seal buckets eagerly: every sealed object's full union
    /// contribution is computed at seal time, and an advance merges all
    /// cached window contributions, slicing them per registered query.
    #[default]
    Eager,
    /// Bound-pruned lazy advance (the paper's §4.2 COUNT bound lifted to
    /// the continuous engine): sealing only records per-object PSL
    /// candidate lists; each registered query's threshold loop merges
    /// per-location candidate counts into flow upper bounds and requests
    /// exact contributions lazily, best-first, until its top-k is
    /// final — locations whose bound never reaches the k-th exact flow
    /// pay no presence computation at all, and a location evaluated for
    /// one query is served from cache for every other.
    BoundPruned,
}

/// Configuration of a [`ServeEngine`]: the shared serving substrate
/// (shard count, bucket granularity, flow configuration, advance
/// strategy) plus any queries to register at construction. Further
/// queries can be added and removed mid-stream with
/// [`ServeEngine::register`] / [`ServeEngine::unregister`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Number of shard workers (threads). Objects are hash-partitioned
    /// across shards, so any count ≥ 1 yields identical results.
    pub num_shards: usize,
    /// Bucket width in milliseconds — the cache granularity every
    /// registered query must share (their window *lengths* are free to
    /// differ).
    pub bucket_millis: i64,
    /// Flow computation configuration (engine, normalization, reduction).
    pub flow: FlowConfig,
    /// Eager or bound-pruned advances. Both return bit-identical top-k
    /// sets and flows; they differ only in how much presence work an
    /// advance pays.
    pub strategy: AdvanceStrategy,
    /// Queries registered at engine construction, in registration order.
    pub queries: Vec<QuerySpec>,
    /// Whether to record internal telemetry (phase histograms, mirrored
    /// counters, advance traces) into the engine's
    /// [`MetricsRegistry`]. On by default — instrumentation is relaxed
    /// atomics with no hot-path allocation, and results are
    /// bit-identical either way — but can be disabled for overhead
    /// comparisons.
    pub metrics: bool,
    /// How many [`AdvanceTrace`]s the engine retains for
    /// [`ServeEngine::recent_traces`] (oldest evicted first; 0
    /// disables tracing). Only applies when `metrics` is on.
    pub trace_capacity: usize,
}

impl ServeConfig {
    /// A query-less config with the given bucket granularity and
    /// sensible defaults (4 shards, DP presence engine — the right
    /// engine for a serving path, where tail latency matters more than
    /// paper fidelity — and eager advances). Add queries with
    /// [`ServeConfig::with_query`] or register them on the engine.
    pub fn with_buckets(bucket_millis: i64) -> Self {
        assert!(bucket_millis > 0, "bucket width must be positive");
        ServeConfig {
            num_shards: 4,
            bucket_millis,
            flow: FlowConfig::default().with_dp_engine(),
            strategy: AdvanceStrategy::default(),
            queries: Vec::new(),
            metrics: true,
            trace_capacity: 64,
        }
    }

    /// The classic single-query constructor: a registry config with one
    /// entry, `QuerySpec { k, query_set, window: spec }`. Kept so the
    /// pre-registry call shape `ServeConfig::new(k, query_set, spec)`
    /// keeps compiling; the engine it builds is the registry engine with
    /// one registered query.
    pub fn new(k: usize, query_set: QuerySet, spec: WindowSpec) -> Self {
        ServeConfig::with_buckets(spec.bucket_millis).with_query(QuerySpec::new(k, query_set, spec))
    }

    /// Adds a query to register at construction. Its window must use the
    /// config's bucket width.
    pub fn with_query(mut self, spec: QuerySpec) -> Self {
        assert_eq!(
            spec.window.bucket_millis, self.bucket_millis,
            "query bucket width must match the engine's cache granularity"
        );
        self.queries.push(spec);
        self
    }

    /// Overrides the shard count.
    pub fn with_shards(mut self, num_shards: usize) -> Self {
        self.num_shards = num_shards;
        self
    }

    /// Overrides the flow configuration.
    pub fn with_flow(mut self, flow: FlowConfig) -> Self {
        self.flow = flow;
        self
    }

    /// Enables or disables the shards' per-`SetRef` kernel memos
    /// (on by default). Flows are bit-identical either way; the memo
    /// only changes how much kernel work repeated advances over
    /// dwelling objects redo. Shorthand for toggling
    /// [`FlowConfig::memo`](popflow_core::FlowConfig) on the flow
    /// configuration.
    pub fn with_memo(mut self, enabled: bool) -> Self {
        self.flow.memo = enabled;
        self
    }

    /// Switches to bound-pruned lazy advances.
    #[deprecated(note = "use with_strategy(AdvanceStrategy::BoundPruned)")]
    pub fn with_bound_pruning(self) -> Self {
        self.with_strategy(AdvanceStrategy::BoundPruned)
    }

    /// Overrides the advance strategy.
    pub fn with_strategy(mut self, strategy: AdvanceStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Enables or disables internal telemetry (see
    /// [`ServeConfig::metrics`]).
    pub fn with_metrics(mut self, metrics: bool) -> Self {
        self.metrics = metrics;
        self
    }

    /// Overrides the advance-trace ring buffer capacity (see
    /// [`ServeConfig::trace_capacity`]).
    pub fn with_trace_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }
}

/// Pre-resolved metric handles: looked up by name once at engine
/// construction, recorded through lock-free afterwards.
#[derive(Debug)]
struct ServeMetrics {
    records_ingested: Counter,
    records_rejected: Counter,
    advances: Counter,
    cache_hits: Counter,
    straddler_recomputes: Counter,
    fresh_presence: Counter,
    presence_cells: Counter,
    presence_skipped: Counter,
    cache_resets: Counter,
    log_bytes: Gauge,
    intern_hits: Gauge,
    memo_hits: Gauge,
    memo_misses: Gauge,
    memo_bytes: Gauge,
    registered_queries: Gauge,
    ingest_ns: Histogram,
    advance_ns: Histogram,
    lazy_eval_ns: Histogram,
    /// One histogram per advance phase, keyed by metric name (≤ 6
    /// entries; linear scan beats hashing at this size).
    phases: Vec<(&'static str, Histogram)>,
}

impl ServeMetrics {
    fn new(registry: &MetricsRegistry) -> Self {
        let phase_names = [
            names::PHASE_EVAL_RPC_NS,
            names::PHASE_MERGE_NS,
            names::PHASE_SLICE_NS,
            names::PHASE_BOUNDS_RPC_NS,
            names::PHASE_BOUNDS_MERGE_NS,
            names::PHASE_THRESHOLD_NS,
        ];
        ServeMetrics {
            records_ingested: registry.counter(names::RECORDS_INGESTED),
            records_rejected: registry.counter(names::RECORDS_REJECTED),
            advances: registry.counter(names::ADVANCES),
            cache_hits: registry.counter(names::CACHE_HITS),
            straddler_recomputes: registry.counter(names::STRADDLER_RECOMPUTES),
            fresh_presence: registry.counter(names::FRESH_PRESENCE),
            presence_cells: registry.counter(names::PRESENCE_CELLS),
            presence_skipped: registry.counter(names::PRESENCE_SKIPPED),
            cache_resets: registry.counter(names::CACHE_RESETS),
            log_bytes: registry.gauge(names::LOG_BYTES),
            intern_hits: registry.gauge(names::INTERN_HITS),
            memo_hits: registry.gauge(names::MEMO_HITS),
            memo_misses: registry.gauge(names::MEMO_MISSES),
            memo_bytes: registry.gauge(names::MEMO_BYTES),
            registered_queries: registry.gauge(names::REGISTERED_QUERIES),
            ingest_ns: registry.histogram(names::INGEST_NS),
            advance_ns: registry.histogram(names::ADVANCE_NS),
            lazy_eval_ns: registry.histogram(names::LAZY_EVAL_NS),
            phases: phase_names
                .into_iter()
                .map(|name| (name, registry.histogram(name)))
                .collect(),
        }
    }

    /// Records one phase duration into its histogram.
    fn record_phase(&self, name: &'static str, ns: u64) {
        if let Some((_, h)) = self.phases.iter().find(|(n, _)| *n == name) {
            h.record(ns);
        }
    }

    /// Re-mirrors the flat [`ServeStats`] into the registry: gauges are
    /// overwritten, counters lifted to the stats value (all stats
    /// counters are monotone, and only the coordinator thread writes).
    fn sync_from(&self, stats: &ServeStats) {
        let lift = |counter: &Counter, value: u64| {
            counter.add(value.saturating_sub(counter.get()));
        };
        lift(&self.records_ingested, stats.records_ingested);
        lift(&self.records_rejected, stats.records_rejected);
        lift(&self.advances, stats.advances);
        lift(&self.cache_hits, stats.cache_hits);
        lift(&self.straddler_recomputes, stats.straddler_recomputes);
        lift(&self.fresh_presence, stats.fresh_presence);
        lift(&self.presence_cells, stats.presence_cells);
        lift(&self.presence_skipped, stats.presence_skipped);
        lift(&self.cache_resets, stats.cache_resets);
        self.log_bytes.set(stats.log_bytes);
        self.intern_hits.set(stats.intern_hits);
        self.memo_hits.set(stats.memo_hits);
        self.memo_misses.set(stats.memo_misses);
        self.memo_bytes.set(stats.memo_bytes);
        self.registered_queries.set(stats.registered_queries);
    }
}

/// Per-advance work accounting for the bound-pruned threshold loops,
/// deduplicated across lazy round-trips (and across the queries of one
/// advance).
#[derive(Debug, Default)]
struct PrunedWork {
    /// Objects that paid at least one fresh presence evaluation.
    fresh_objects: HashSet<ObjectId>,
}

/// Per-window coordinator state of one bound-pruned advance: merged
/// candidate bounds in, memoized exact flows out. Shared by every query
/// whose window length maps to this window.
struct WindowState {
    start: i64,
    /// Per-location candidate counts — the COUNT flow bounds.
    counts: HashMap<SLocId, usize>,
    /// Per-shard candidate objects per location, for lazy round-trips.
    per_shard: Vec<HashMap<SLocId, Vec<ObjectId>>>,
    /// All candidate (object, location) cells in the window.
    total_cells: u64,
    /// Cells some query's threshold loop actually requested.
    requested_cells: u64,
    objects_total: usize,
    /// Exact flows finalized by any query's loop — the cross-query memo.
    flows: HashMap<SLocId, f64>,
    /// Objects summed / DP-fallen-back in this window (the union
    /// evaluation's accounting, shared by its queries).
    requested_objects: HashSet<ObjectId>,
    dp_fallback_objects: HashSet<ObjectId>,
}

/// Cumulative serving counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Records accepted and routed to a shard.
    pub records_ingested: u64,
    /// Records rejected (late or out of order).
    pub records_rejected: u64,
    /// Window advances served (each advance evaluates every registered
    /// query).
    pub advances: u64,
    /// Work served from caches. Eager advances count *objects* served
    /// from sealed-bucket contribution caches; bound-pruned advances
    /// count (object, location) *cells* served from lazily-filled score
    /// caches. Work shared across registered queries shows up here: the
    /// second query to need a cell finds it cached.
    pub cache_hits: u64,
    /// Eager: objects recomputed exactly as bucket straddlers.
    /// Bound-pruned: straddler objects observed in evaluated windows.
    /// Counted once per distinct window per advance, however many
    /// queries share the window.
    pub straddler_recomputes: u64,
    /// Presence computations counted per object (sealing + straddlers
    /// for eager advances; lazily evaluated objects for bound-pruned
    /// ones) — the quantity the bucketing scheme minimizes.
    pub fresh_presence: u64,
    /// Presence computations counted per (object, location) cell — the
    /// unit the bound-pruned strategy prunes at and the multi-query
    /// registry shares: sealing work is paid once against the union of
    /// registered location sets, not once per query.
    pub presence_cells: u64,
    /// Candidate (object, location) cells a bound-pruned advance never
    /// had to evaluate: no registered query's flow bound for the
    /// location reached its k-th exact flow. Always 0 under
    /// [`AdvanceStrategy::Eager`].
    pub presence_skipped: u64,
    /// Resident bytes of the shard logs' columnar stores (summed across
    /// shards). A *gauge*, not a counter: [`ServeEngine::stats`] asks
    /// the shards for their live [`indoor_iupt::StoreStats`], so the
    /// value reflects the current log footprint — including records
    /// ingested since the last advance (it used to go stale between
    /// advances).
    pub log_bytes: u64,
    /// Ingested sample sets the shard interners deduplicated to an
    /// already-stored copy (summed across shards). Like
    /// [`ServeStats::log_bytes`], a live gauge.
    pub intern_hits: u64,
    /// Kernel evaluations served from the shards' per-`SetRef` compute
    /// caches ([`popflow_core::FlowMemo`]) without recomputation, summed
    /// across shards. Like [`ServeStats::log_bytes`], a live gauge
    /// (cumulative within each shard memo's lifetime; a cache reset
    /// clears entries but keeps the counters). Always 0 when
    /// [`FlowConfig::memo`] is off.
    pub memo_hits: u64,
    /// Kernel evaluations the shard memos had to compute (then cached),
    /// summed across shards. `memo_hits / (memo_hits + memo_misses)` is
    /// the serving tier's kernel-memo hit rate.
    pub memo_misses: u64,
    /// Resident bytes of the shard memos' cached entries, summed across
    /// shards — a live gauge, strictly bounded by the per-shard
    /// capacity, and also folded into the shards' store footprint
    /// accounting ([`indoor_iupt::StoreStats::total_bytes`]).
    pub memo_bytes: u64,
    /// Queries currently registered — a gauge tracking
    /// [`ServeEngine::register`] / [`ServeEngine::unregister`].
    pub registered_queries: u64,
    /// Times a registration grew the union of registered location sets
    /// and forced the shards to drop their caches (the next advance
    /// re-seals from the append-only logs). Shrinking the union never
    /// resets.
    pub cache_resets: u64,
}

/// One registered standing query and its serving state.
#[derive(Debug)]
struct Registered {
    id: QueryId,
    spec: QuerySpec,
    /// The query's previous top-k, for delta reporting.
    previous: Option<Vec<SLocId>>,
}

/// The sharded incremental continuous top-k engine: a **query registry**
/// over shared bucket caches.
///
/// Ingestion partitions records by object across `num_shards` worker
/// threads of a [`popflow_exec::ShardPool`] (routed by the pool's shared
/// [`popflow_exec::Partitioner`]); each worker owns its shard's IUPT
/// partition and ONE sealed-bucket cache computed against the **union**
/// of every registered query's location set. An
/// [`advance_all`](ServeEngine::advance_all) seals newly completed
/// buckets once, then evaluates every registered query on top — slicing
/// the shared union contributions per location subset (eager) or running
/// one threshold loop per query over shared lazy score caches
/// (bound-pruned) — and reports one [`ContinuousUpdate`] per query.
/// Queries may use different window lengths (sharing the bucket width);
/// each keeps its own frontier and delta state, so windows of different
/// widths advance independently off the same shard logs.
///
/// Every registered query's ranking is, by construction, **bit-identical**
/// to a dedicated single-query engine (and to the batch Nested-Loop
/// search over the same window): per-location presence scores do not
/// depend on which other locations are evaluated alongside, and the
/// merge accumulates per-object contributions in ascending object-id
/// order with zero scores skipped, exactly as the batch search does.
///
/// # Registration
///
/// [`register`](ServeEngine::register) /
/// [`unregister`](ServeEngine::unregister) may be called mid-stream.
/// Registering a query whose locations grow the union drops the shard
/// caches (counted in [`ServeStats::cache_resets`]); because shard logs
/// are append-only, the next advance re-seals deterministically, so a
/// query registered mid-stream returns exactly what it would have
/// returned had it been registered from the start.
///
/// # Failure contract
///
/// A failed advance poisons the engine. Once shards have begun sealing,
/// a mid-advance error (a shard worker dying, a presence computation
/// failing) leaves coordinator and shard state divergent — some shards
/// have sealed and evicted, others may not have — so instead of serving
/// unpredictable results, every later `ingest`/`advance` returns
/// [`FlowError::EngineUnavailable`]. Rejected inputs (late records,
/// backwards advances, unknown or invalid queries) do **not** poison:
/// they leave the engine untouched by design.
///
/// ```
/// use std::sync::Arc;
/// use indoor_iupt::fixtures::paper_table2;
/// use indoor_iupt::Timestamp;
/// use indoor_model::fixtures::paper_figure1;
/// use popflow_core::{ContinuousEngine, FlowConfig, QuerySet, WindowSpec};
/// use popflow_serve::{AdvanceStrategy, ServeConfig, ServeEngine};
///
/// let fig = paper_figure1();
/// let cfg = ServeConfig::new(
///     2,
///     QuerySet::new(fig.r.to_vec()),
///     WindowSpec::new(4_000, 2), // two 4-second buckets
/// )
/// .with_strategy(AdvanceStrategy::BoundPruned)
/// .with_flow(FlowConfig::default().with_full_product_normalization());
/// let mut engine = ServeEngine::new(Arc::new(fig.space.clone()), cfg);
/// for r in paper_table2().to_records() {
///     engine.ingest(r).unwrap();
/// }
/// let update = engine.advance(Timestamp::from_secs(8)).unwrap();
/// assert_eq!(update.outcome.ranking[0].sloc, fig.r[5]); // r6 (Example 4)
/// ```
#[derive(Debug)]
pub struct ServeEngine {
    config: ServeConfig,
    pool: ShardPool<ShardWorker>,
    stats: ServeStats,
    /// Registered queries in registration order. The first is the
    /// *primary* query the single-query [`ContinuousEngine`] facade
    /// reports for.
    queries: Vec<Registered>,
    /// Next [`QueryId`] to hand out; ids are never reused.
    next_id: u64,
    /// Union of every registered query's location set — what the shard
    /// caches are computed against.
    union: QuerySet,
    /// Timestamp of the first accepted record — anchors
    /// [`ServeEngine::due_advances`] before the first advance seals a
    /// frontier.
    first_ingest: Option<Timestamp>,
    last_ingest: Option<Timestamp>,
    last_advance: Option<Timestamp>,
    /// Records must land at or after the sealed frontier: once a bucket
    /// is sealed its cache is immutable, so a record falling into it
    /// would silently be ignored by future windows. Such late records
    /// are rejected at ingest instead.
    sealed_frontier_millis: Option<i64>,
    /// Set by the first failed advance; see the failure contract above.
    poisoned: Option<String>,
    /// The engine's telemetry registry (empty when
    /// [`ServeConfig::metrics`] is off).
    registry: MetricsRegistry,
    /// Pre-resolved metric handles; `None` disables all recording.
    metrics: Option<ServeMetrics>,
    /// Ring buffer of the last [`ServeConfig::trace_capacity`] advance
    /// traces, oldest first.
    traces: VecDeque<AdvanceTrace>,
}

impl ServeEngine {
    /// Spawns the shard worker pool and registers `config.queries` (in
    /// order). `space` is shared read-only with all workers.
    pub fn new(space: Arc<IndoorSpace>, config: ServeConfig) -> Self {
        assert!(config.num_shards >= 1, "need at least one shard");
        let flow = config.flow;
        let bucket_millis = config.bucket_millis;
        let registry = MetricsRegistry::new();
        // Workers share one seal histogram (same name resolves to the
        // same storage); the coordinator's handles are resolved below.
        let seal_ns = config
            .metrics
            .then(|| registry.histogram(names::SHARD_SEAL_NS));
        let mut pool = ShardPool::new("popflow-shard", config.num_shards, |_| {
            ShardWorker::new(
                Arc::clone(&space),
                QuerySet::new(Vec::new()),
                flow,
                bucket_millis,
                seal_ns.clone(),
            )
        });
        let metrics = if config.metrics {
            pool.set_metrics(&registry, names::POOL_PREFIX);
            Some(ServeMetrics::new(&registry))
        } else {
            None
        };
        let initial = config.queries.clone();
        let mut engine = ServeEngine {
            config,
            pool,
            stats: ServeStats::default(),
            queries: Vec::new(),
            next_id: 0,
            union: QuerySet::new(Vec::new()),
            first_ingest: None,
            last_ingest: None,
            last_advance: None,
            sealed_frontier_millis: None,
            poisoned: None,
            registry,
            metrics,
            traces: VecDeque::new(),
        };
        for spec in initial {
            // `with_query` validates specs, but `ServeConfig.queries` is
            // a public field: a hand-built config can smuggle in an
            // invalid spec. That is an engine-construction failure, not
            // a crash — poison, so every later call reports
            // `EngineUnavailable` with the rejection as its cause.
            if let Err(e) = engine.register(spec) {
                engine.poisoned = Some(format!(
                    "engine construction rejected a configured query ({e}); \
                     rebuild the config through with_query"
                ));
                break;
            }
        }
        engine
    }

    /// Cumulative serving counters.
    ///
    /// The [`ServeStats::log_bytes`] / [`ServeStats::intern_hits`]
    /// gauges are refreshed from the live shard stores on every call
    /// (a cheap per-shard store-stats round-trip), so they are current
    /// even before the first advance and between advances. A poisoned
    /// (or shard-down) engine returns the last cached values instead.
    pub fn stats(&self) -> ServeStats {
        let mut stats = self.stats;
        if self.poisoned.is_none() {
            if let Ok(stores) = self
                .pool
                .ask_all(|_, worker: &mut ShardWorker| worker.store_stats())
            {
                stats.log_bytes = stores.iter().map(|s| s.bytes as u64).sum();
                stats.intern_hits = stores.iter().map(|s| s.intern_hits).sum();
                stats.memo_hits = stores.iter().map(|s| s.memo.hits).sum();
                stats.memo_misses = stores.iter().map(|s| s.memo.misses).sum();
                stats.memo_bytes = stores.iter().map(|s| s.memo.bytes as u64).sum();
            }
        }
        if let Some(m) = &self.metrics {
            m.sync_from(&stats);
        }
        stats
    }

    /// The engine's telemetry registry. Snapshot it for export:
    /// `engine.metrics().snapshot().to_json()` (or `.to_prometheus()`).
    /// Empty when [`ServeConfig::metrics`] is off.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The retained [`AdvanceTrace`]s, oldest first (at most
    /// [`ServeConfig::trace_capacity`]; empty when metrics are off).
    pub fn recent_traces(&self) -> impl Iterator<Item = &AdvanceTrace> {
        self.traces.iter()
    }

    /// The engine configuration (as constructed; for the live query
    /// registry see [`ServeEngine::query_ids`] and
    /// [`ServeEngine::spec`]).
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Whether a failed advance has taken the engine out of service.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.is_some()
    }

    /// Timestamp of the most recent accepted record, if any.
    pub fn last_ingest(&self) -> Option<Timestamp> {
        self.last_ingest
    }

    /// The `now` of the most recent advance, if any.
    pub fn last_advance(&self) -> Option<Timestamp> {
        self.last_advance
    }

    /// The bucket-boundary advance instants currently *due*, ascending.
    ///
    /// A boundary `m · bucket_millis` is due when it would seal at least
    /// one new bucket — it lies after the sealed frontier (after the
    /// first ingested record's bucket when nothing is sealed yet) — and
    /// it is at most `upper`. Boundaries past the bucket of the last
    /// ingested record seal nothing and are omitted, so passing
    /// `Timestamp(i64::MAX)` as `upper` means "everything the stream
    /// justifies" rather than an infinite list. Empty before the first
    /// ingest.
    ///
    /// This is the serving front-end's tick planner: a scheduler calls
    /// it (or [`ServeEngine::advance_due`]) with its release watermark
    /// and knows exactly which `advance_all` calls are pending without
    /// guessing at wall-clock alignment.
    pub fn due_advances(&self, upper: Timestamp) -> Vec<Timestamp> {
        let width = self.config.bucket_millis;
        let (Some(first), Some(last)) = (self.first_ingest, self.last_ingest) else {
            return Vec::new();
        };
        let next = match self.sealed_frontier_millis {
            Some(frontier) => frontier + width,
            None => (first.millis().div_euclid(width) + 1) * width,
        };
        let cap = (last.millis().div_euclid(width) + 1) * width;
        let mut due = Vec::new();
        let mut t = next;
        while t <= upper.millis().min(cap) {
            due.push(Timestamp(t));
            t += width;
        }
        due
    }

    /// Runs the due advances (see [`ServeEngine::due_advances`]) oldest
    /// first, stopping early once `deadline` passes or `max_advances`
    /// have run, and returns the performed advances with their updates
    /// plus the number still due.
    ///
    /// Each advance is atomic: the deadline is consulted only *between*
    /// `advance_all` calls, never inside one, so a tight budget defers
    /// whole window slides to the next tick instead of splitting one —
    /// which is what keeps budgeted serving bit-identical to an
    /// unbudgeted driver. At least one due advance always runs per call
    /// (when `max_advances > 0`), so a scheduler that is persistently
    /// over deadline still makes progress.
    #[allow(clippy::type_complexity)]
    pub fn advance_due(
        &mut self,
        upper: Timestamp,
        deadline: Option<std::time::Instant>,
        max_advances: usize,
    ) -> Result<(Vec<(Timestamp, Vec<(QueryId, ContinuousUpdate)>)>, usize), FlowError> {
        let due = self.due_advances(upper);
        let mut done = Vec::new();
        for &t in &due {
            let budget_spent = done.len() >= max_advances;
            let over_deadline =
                !done.is_empty() && deadline.is_some_and(|d| std::time::Instant::now() >= d);
            if budget_spent || over_deadline {
                break;
            }
            let updates = self.advance_all(t)?;
            done.push((t, updates));
        }
        let remaining = due.len() - done.len();
        Ok((done, remaining))
    }

    /// Registers a standing query mid-stream and returns its handle.
    /// The spec's window must use the engine's bucket width
    /// ([`FlowError::InvalidQuery`] otherwise). If the query's locations
    /// grow the union of registered sets, shard caches reset and the
    /// next advance re-seals from the append-only logs — making the
    /// late-registered query's results identical to an engine that held
    /// it from the start.
    pub fn register(&mut self, spec: QuerySpec) -> Result<QueryId, FlowError> {
        self.check_poisoned()?;
        if spec.window.bucket_millis != self.config.bucket_millis {
            return Err(FlowError::InvalidQuery {
                detail: format!(
                    "query bucket width {}ms does not match the engine's cache \
                     granularity of {}ms",
                    spec.window.bucket_millis, self.config.bucket_millis
                ),
            });
        }
        let id = QueryId(self.next_id);
        self.next_id += 1;
        self.queries.push(Registered {
            id,
            spec,
            previous: None,
        });
        self.sync_union()?;
        Ok(id)
    }

    /// Removes a registered query. Unknown (or already removed) handles
    /// are rejected with [`FlowError::InvalidQuery`] and change nothing.
    /// Shrinking the union keeps the shard caches — they are valid
    /// supersets, sliced at merge time.
    pub fn unregister(&mut self, id: QueryId) -> Result<(), FlowError> {
        self.check_poisoned()?;
        let Some(pos) = self.queries.iter().position(|r| r.id == id) else {
            return Err(FlowError::InvalidQuery {
                detail: format!("unknown {id}"),
            });
        };
        self.queries.remove(pos);
        self.sync_union()?;
        Ok(())
    }

    /// Handles of the registered queries, in registration order.
    pub fn query_ids(&self) -> Vec<QueryId> {
        self.queries.iter().map(|r| r.id).collect()
    }

    /// The spec registered under `id`, if any.
    pub fn spec(&self, id: QueryId) -> Option<&QuerySpec> {
        self.queries.iter().find(|r| r.id == id).map(|r| &r.spec)
    }

    /// The most recent top-k of the query registered under `id`, if that
    /// query has seen an advance.
    pub fn current_for(&self, id: QueryId) -> Option<&[SLocId]> {
        self.queries
            .iter()
            .find(|r| r.id == id)
            .and_then(|r| r.previous.as_deref())
    }

    /// Recomputes the union of registered location sets and retargets
    /// every shard at it. Growth forces a cache reset (cached
    /// contributions were computed against the smaller union and would
    /// be missing locations); shrinkage keeps the caches.
    fn sync_union(&mut self) -> Result<(), FlowError> {
        self.stats.registered_queries = self.queries.len() as u64;
        if let Some(m) = &self.metrics {
            m.registered_queries.set(self.stats.registered_queries);
        }
        let union: QuerySet = self
            .queries
            .iter()
            .flat_map(|r| r.spec.query_set.slocs().iter().copied())
            .collect();
        if union == self.union {
            return Ok(());
        }
        let grew = union.slocs().iter().any(|&s| !self.union.contains(s));
        if grew {
            self.stats.cache_resets += 1;
        }
        self.union = union.clone();
        for shard in 0..self.pool.shards() {
            let union = union.clone();
            self.pool
                .tell(shard, move |worker| worker.set_union(union, grew))
                .map_err(|down| {
                    let e = self.shard_down(down);
                    self.poison(e)
                })?;
        }
        if let Some(m) = &self.metrics {
            m.sync_from(&self.stats);
        }
        Ok(())
    }

    /// Ingests a whole batch, stopping at the first rejected record.
    pub fn ingest_all<I: IntoIterator<Item = Record>>(
        &mut self,
        records: I,
    ) -> Result<(), FlowError> {
        for r in records {
            self.ingest(r)?;
        }
        Ok(())
    }

    fn check_poisoned(&self) -> Result<(), FlowError> {
        match &self.poisoned {
            Some(detail) => Err(FlowError::EngineUnavailable {
                detail: detail.clone(),
            }),
            None => Ok(()),
        }
    }

    fn poison(&mut self, e: FlowError) -> FlowError {
        self.poisoned = Some(format!(
            "engine poisoned by a failed advance ({e}); coordinator and \
             shard state may have diverged — rebuild the engine"
        ));
        e
    }

    fn check_ingest_time(&mut self, t: Timestamp) -> Result<(), FlowError> {
        if let Some(last) = self.last_ingest {
            if t < last {
                self.stats.records_rejected += 1;
                if let Some(m) = &self.metrics {
                    m.records_rejected.inc();
                }
                return Err(FlowError::TimeRegression {
                    last_millis: last.millis(),
                    offending_millis: t.millis(),
                });
            }
        }
        if let Some(frontier) = self.sealed_frontier_millis {
            if t.millis() < frontier {
                self.stats.records_rejected += 1;
                if let Some(m) = &self.metrics {
                    m.records_rejected.inc();
                }
                return Err(FlowError::TimeRegression {
                    last_millis: frontier,
                    offending_millis: t.millis(),
                });
            }
        }
        Ok(())
    }

    fn shard_down(&self, down: ShardDown) -> FlowError {
        FlowError::EngineUnavailable {
            detail: down.to_string(),
        }
    }

    /// Advances every registered query to `now` and returns one update
    /// per query, in registration order. Buckets are sealed (and, under
    /// bound pruning, candidate bounds collected) **once** across all
    /// queries; per-query evaluation runs on top of the shared caches.
    ///
    /// `now` must be non-decreasing across calls, and at least one query
    /// must be registered ([`FlowError::InvalidQuery`] otherwise — a
    /// rejection, not a poisoning).
    pub fn advance_all(
        &mut self,
        now: Timestamp,
    ) -> Result<Vec<(QueryId, ContinuousUpdate)>, FlowError> {
        self.check_poisoned()?;
        if self.queries.is_empty() {
            return Err(FlowError::InvalidQuery {
                detail: "advance with no registered queries".to_string(),
            });
        }
        if let Some(last) = self.last_advance {
            if now < last {
                return Err(FlowError::TimeRegression {
                    last_millis: last.millis(),
                    offending_millis: now.millis(),
                });
            }
        }
        self.last_advance = Some(now);
        let total_timer = Timer::start();
        let mut trace =
            AdvanceTrace::new(self.stats.advances + 1, now.millis(), self.config.strategy);

        // All queries share the bucket width, so they share the end
        // bucket; window lengths (and thus starts) differ per query.
        let end_bucket = now.millis().div_euclid(self.config.bucket_millis) - 1;
        let mut starts: Vec<i64> = self
            .queries
            .iter()
            .map(|r| end_bucket - r.spec.window.window_buckets as i64 + 1)
            .collect();
        starts.sort_unstable();
        starts.dedup();
        // anlz:allow(panic-in-hot-path): non-empty — advance_all rejects an empty registry above
        let global_start = starts[0];

        let result = match self.config.strategy {
            AdvanceStrategy::Eager => {
                self.advance_eager(global_start, end_bucket, &starts, &mut trace)
            }
            AdvanceStrategy::BoundPruned => {
                self.advance_pruned(global_start, end_bucket, &starts, &mut trace)
            }
        };
        // Buckets through `end_bucket` are now sealed engine-wide — even
        // if a shard reported an error: some shards may have sealed
        // their caches, and accepting a late record into a sealed bucket
        // would silently corrupt every future window.
        let frontier = (end_bucket + 1) * self.config.bucket_millis;
        self.sealed_frontier_millis = Some(
            self.sealed_frontier_millis
                .unwrap_or(frontier)
                .max(frontier),
        );

        let outcomes = match result {
            Ok(outcomes) => outcomes,
            Err(e) => return Err(self.poison(e)),
        };
        self.stats.advances += 1;

        debug_assert_eq!(outcomes.len(), self.queries.len());
        let slice_timer = Timer::start();
        let mut updates = Vec::with_capacity(self.queries.len());
        for (qi, (reg, outcome)) in self.queries.iter_mut().zip(outcomes).enumerate() {
            let (_, window) = reg.spec.window.window_at(now);
            let fresh = outcome.topk_slocs();
            let (changed, entered, left) = diff_topk(reg.previous.as_deref(), &fresh);
            if let Some(q) = trace.queries.get_mut(qi) {
                q.changed = changed;
            }
            reg.previous = Some(fresh);
            updates.push((
                reg.id,
                ContinuousUpdate {
                    outcome,
                    changed,
                    entered,
                    left,
                    window,
                },
            ));
        }
        trace.add_phase(names::PHASE_SLICE_NS, slice_timer.elapsed_ns());
        trace.total_ns = total_timer.elapsed_ns();
        if let Some(m) = &self.metrics {
            m.advance_ns.record(trace.total_ns);
            for &(name, ns) in &trace.phases {
                m.record_phase(name, ns);
            }
            m.sync_from(&self.stats);
            if self.config.trace_capacity > 0 {
                if self.traces.len() == self.config.trace_capacity {
                    self.traces.pop_front();
                }
                self.traces.push_back(trace);
            }
        }
        Ok(updates)
    }

    /// The index into `starts` of the window a query of `window_buckets`
    /// buckets evaluates this advance. The advance plan collects every
    /// registered query's start, so a miss means the plan and the
    /// registry diverged — an engine fault, not a caller error.
    fn window_index(
        starts: &[i64],
        end_bucket: i64,
        window_buckets: usize,
    ) -> Result<usize, FlowError> {
        let start = end_bucket - window_buckets as i64 + 1;
        starts
            .binary_search(&start)
            .map_err(|_| FlowError::EngineUnavailable {
                detail: format!(
                    "window start {start} (width {window_buckets}) missing from the advance \
                     plan {starts:?}"
                ),
            })
    }

    /// The eager advance: every shard seals once and replies with its
    /// full contribution list for every requested window in one
    /// round-trip ([`ShardPool::ask_all`] — gathered in shard order);
    /// the coordinator merges each window once and slices the merged
    /// union scores per query.
    fn advance_eager(
        &mut self,
        global_start: i64,
        end_bucket: i64,
        starts: &[i64],
        trace: &mut AdvanceTrace,
    ) -> Result<Vec<QueryOutcome>, FlowError> {
        let request: Vec<i64> = starts.to_vec();
        let rpc_timer = Timer::start();
        let reports = self
            .pool
            .ask_all(move |_, worker: &mut ShardWorker| {
                worker.evaluate_multi(global_start, end_bucket, &request)
            })
            .map_err(|down| self.shard_down(down))?;
        trace.add_phase(names::PHASE_EVAL_RPC_NS, rpc_timer.elapsed_ns());

        let merge_timer = Timer::start();
        self.stats.log_bytes = 0;
        self.stats.intern_hits = 0;
        self.stats.memo_hits = 0;
        self.stats.memo_misses = 0;
        self.stats.memo_bytes = 0;
        for (shard, report) in reports.iter().enumerate() {
            self.stats.fresh_presence += report.fresh_presence as u64;
            self.stats.presence_cells += report.presence_cells as u64;
            self.stats.log_bytes += report.store.bytes as u64;
            self.stats.intern_hits += report.store.intern_hits;
            self.stats.memo_hits += report.store.memo.hits;
            self.stats.memo_misses += report.store.memo.misses;
            self.stats.memo_bytes += report.store.memo.bytes as u64;
            let mut shard_trace = ShardTrace {
                shard,
                presence_cells: report.presence_cells as u64,
                ..ShardTrace::default()
            };
            for win in &report.windows {
                self.stats.cache_hits += win.cache_hits as u64;
                self.stats.straddler_recomputes += win.straddlers as u64;
                shard_trace.cache_hits += win.cache_hits as u64;
                shard_trace.straddlers += win.straddlers as u64;
            }
            trace.shards.push(shard_trace);
        }
        let merged = self.merge_windows(reports, starts.len())?;
        trace.add_phase(names::PHASE_MERGE_NS, merge_timer.elapsed_ns());

        let slice_timer = Timer::start();
        let mut outcomes = Vec::with_capacity(self.queries.len());
        for reg in &self.queries {
            let query_timer = Timer::start();
            let wi = Self::window_index(starts, end_bucket, reg.spec.window.window_buckets)?;
            let (scores, stats) = merged.get(wi).ok_or_else(|| FlowError::EngineUnavailable {
                detail: format!("merge produced no window {wi} for the advance plan"),
            })?;
            // Slice the union-merged scores down to this query's
            // locations. Per-location flows are query-independent,
            // so the projection is bit-identical to a dedicated
            // single-query merge.
            let sliced: Vec<(SLocId, f64)> = reg
                .spec
                .query_set
                .slocs()
                .iter()
                .map(|&s| (s, scores.get(&s).copied().unwrap_or(0.0)))
                .collect();
            outcomes.push(QueryOutcome {
                ranking: rank_topk(sliced, reg.spec.k),
                stats: stats.clone(),
            });
            trace.queries.push(QueryTrace {
                id: reg.id,
                ns: query_timer.elapsed_ns(),
                changed: false,
            });
        }
        trace.add_phase(names::PHASE_SLICE_NS, slice_timer.elapsed_ns());
        Ok(outcomes)
    }

    /// Merges eager shard reports into one global score map per window,
    /// accumulating per-object contributions in ascending object-id
    /// order — the exact order (and therefore the exact floating-point
    /// sums) of the batch Nested-Loop search. The per-window
    /// [`SearchStats`] describe the shared union evaluation and are
    /// reported identically for every query using the window.
    fn merge_windows(
        &self,
        reports: Vec<EagerReport>,
        num_windows: usize,
    ) -> Result<Vec<WindowScores>, FlowError> {
        for report in &reports {
            if let Some(e) = &report.error {
                return Err(e.clone());
            }
        }
        let mut merged = Vec::with_capacity(num_windows);
        for wi in 0..num_windows {
            let mut contributions: Vec<(ObjectId, Arc<ObjectContribution>)> = Vec::new();
            let mut objects_total = 0;
            let mut dp_fallback_objects = 0;
            for report in &reports {
                let win = report
                    .windows
                    .get(wi)
                    .ok_or_else(|| FlowError::EngineUnavailable {
                        detail: format!("shard reply is missing window {wi} of the advance plan"),
                    })?;
                objects_total += win.objects_total;
                contributions.extend(win.contributions.iter().cloned());
            }
            contributions.sort_unstable_by_key(|(oid, _)| *oid);
            let mut global: HashMap<SLocId, f64> =
                self.union.slocs().iter().map(|&s| (s, 0.0)).collect();
            let objects_computed = contributions.len();
            for (_, contribution) in &contributions {
                dp_fallback_objects += usize::from(contribution.dp_fallback);
                contribution.add_to(&mut global);
            }
            merged.push((
                global,
                SearchStats {
                    objects_total,
                    objects_computed,
                    dp_fallback_objects,
                },
            ));
        }
        Ok(merged)
    }

    /// The bound-pruned lazy advance. Phase 1 collects per-window
    /// per-location candidate counts from every shard (cheap sealing —
    /// no presence work); phase 2 runs one threshold loop per registered
    /// query, requesting exact per-location contributions only while the
    /// location's merged COUNT bound can still reach that query's k-th
    /// exact flow. Exact flows are memoized per window, so a location
    /// two queries share is evaluated once; at the shard level, scores
    /// memoize in the bucket caches, shared across windows and slides.
    fn advance_pruned(
        &mut self,
        global_start: i64,
        end_bucket: i64,
        starts: &[i64],
        trace: &mut AdvanceTrace,
    ) -> Result<Vec<QueryOutcome>, FlowError> {
        // ---- Phase 1: bounds, for every window at once. Per-shard
        // replies (gathered in shard order) keep candidate lists
        // attributable to the shard that owns the objects.
        let request: Vec<i64> = starts.to_vec();
        let rpc_timer = Timer::start();
        let reports = self
            .pool
            .ask_all(move |_, worker: &mut ShardWorker| {
                worker.advance_bounds_multi(global_start, end_bucket, &request)
            })
            .map_err(|down| self.shard_down(down))?;
        trace.add_phase(names::PHASE_BOUNDS_RPC_NS, rpc_timer.elapsed_ns());

        let bounds_timer = Timer::start();
        let num_shards = self.pool.shards();
        trace.shards = (0..num_shards)
            .map(|shard| ShardTrace {
                shard,
                ..ShardTrace::default()
            })
            .collect();
        let mut windows: Vec<WindowState> = starts
            .iter()
            .map(|&start| WindowState {
                start,
                counts: HashMap::new(),
                per_shard: vec![HashMap::new(); num_shards],
                total_cells: 0,
                requested_cells: 0,
                objects_total: 0,
                flows: HashMap::new(),
                requested_objects: HashSet::new(),
                dp_fallback_objects: HashSet::new(),
            })
            .collect();
        self.stats.log_bytes = 0;
        self.stats.intern_hits = 0;
        self.stats.memo_hits = 0;
        self.stats.memo_misses = 0;
        self.stats.memo_bytes = 0;
        for (shard, report) in reports.into_iter().enumerate() {
            self.stats.log_bytes += report.store.bytes as u64;
            self.stats.intern_hits += report.store.intern_hits;
            self.stats.memo_hits += report.store.memo.hits;
            self.stats.memo_misses += report.store.memo.misses;
            self.stats.memo_bytes += report.store.memo.bytes as u64;
            for (wi, win) in report.windows.into_iter().enumerate() {
                let state = windows
                    .get_mut(wi)
                    .ok_or_else(|| FlowError::EngineUnavailable {
                        detail: format!(
                            "shard {shard} replied with more windows than the advance plan \
                             requested ({wi} >= {})",
                            starts.len()
                        ),
                    })?;
                state.objects_total += win.objects_total;
                self.stats.straddler_recomputes += win.straddlers as u64;
                // anlz:allow(panic-in-hot-path): trace.shards was sized to num_shards above; ask_all replies once per shard
                trace.shards[shard].straddlers += win.straddlers as u64;
                for (oid, relevant) in win.candidates {
                    state.total_cells += relevant.len() as u64;
                    // anlz:allow(panic-in-hot-path): trace.shards was sized to num_shards above; ask_all replies once per shard
                    trace.shards[shard].candidate_cells += relevant.len() as u64;
                    for &q in &relevant {
                        *state.counts.entry(q).or_insert(0) += 1;
                        // anlz:allow(panic-in-hot-path): per_shard was sized to num_shards at construction just above
                        state.per_shard[shard].entry(q).or_default().push(oid);
                    }
                }
            }
        }
        trace.add_phase(names::PHASE_BOUNDS_MERGE_NS, bounds_timer.elapsed_ns());

        // ---- Phase 2: one threshold loop per query (Algorithm 4's heap
        // loop over per-location COUNT bounds), in registration order.
        // Zero-candidate locations have an exactly-zero flow with no
        // work at all; locations another query already finalized are
        // free.
        let threshold_timer = Timer::start();
        let mut work = PrunedWork::default();
        let mut outcomes = Vec::with_capacity(self.queries.len());
        for qi in 0..self.queries.len() {
            let query_timer = Timer::start();
            // anlz:allow(panic-in-hot-path): qi ranges over self.queries.len()
            let spec = self.queries[qi].spec.clone();
            let wi = Self::window_index(starts, end_bucket, spec.window.window_buckets)?;
            let state = windows
                .get_mut(wi)
                .ok_or_else(|| FlowError::EngineUnavailable {
                    detail: format!("bounds merge produced no window {wi} for the advance plan"),
                })?;
            let mut heap = ThresholdHeap::new();
            for &sloc in spec.query_set.slocs() {
                if let Some(&flow) = state.flows.get(&sloc) {
                    heap.push_exact(sloc, flow);
                } else {
                    match state.counts.get(&sloc).copied().unwrap_or(0) {
                        0 => heap.push_exact(sloc, 0.0),
                        candidates => heap.push_bound(LocationBound { sloc, candidates }),
                    }
                }
            }
            let k_eff = spec.k_eff();
            let mut finals: Vec<(SLocId, f64)> = Vec::with_capacity(k_eff);
            while finals.len() < k_eff {
                match heap.pop() {
                    None => break,
                    Some(ThresholdStep::Finalize(sloc, flow)) => finals.push((sloc, flow)),
                    Some(ThresholdStep::Evaluate(sloc)) => {
                        let flow = Self::evaluate_location(
                            &self.pool,
                            &mut self.stats,
                            self.metrics.as_ref(),
                            sloc,
                            state,
                            &mut work,
                            &mut trace.shards,
                        )?;
                        state.flows.insert(sloc, flow);
                        heap.push_exact(sloc, flow);
                    }
                }
            }
            outcomes.push(QueryOutcome {
                ranking: rank_topk(finals, spec.k),
                stats: SearchStats {
                    objects_total: state.objects_total,
                    objects_computed: state.requested_objects.len(),
                    dp_fallback_objects: state.dp_fallback_objects.len(),
                },
            });
            trace.queries.push(QueryTrace {
                // anlz:allow(panic-in-hot-path): qi ranges over self.queries.len()
                id: self.queries[qi].id,
                ns: query_timer.elapsed_ns(),
                changed: false,
            });
        }
        for state in &windows {
            self.stats.presence_skipped += state.total_cells - state.requested_cells;
        }
        // An object evaluated for several locations (or queries) across
        // round-trips still counts once toward the per-object presence
        // stat.
        self.stats.fresh_presence += work.fresh_objects.len() as u64;
        trace.add_phase(names::PHASE_THRESHOLD_NS, threshold_timer.elapsed_ns());
        Ok(outcomes)
    }

    /// One lazy round-trip: asks every shard holding candidates for
    /// `sloc` in the window for their exact contributions, then
    /// accumulates the flow in ascending object-id order — the identical
    /// floating-point sum the eager merge (and the batch Nested-Loop
    /// search) produces. An associated function over split borrows: the
    /// caller holds `&mut` window state across the call.
    fn evaluate_location(
        pool: &ShardPool<ShardWorker>,
        stats: &mut ServeStats,
        metrics: Option<&ServeMetrics>,
        sloc: SLocId,
        state: &mut WindowState,
        work: &mut PrunedWork,
        shard_traces: &mut [ShardTrace],
    ) -> Result<f64, FlowError> {
        let lazy_timer = Timer::start();
        let window_start = state.start;
        let mut replies: Vec<Reply<EvalReport>> = Vec::new();
        for (shard, candidates) in state.per_shard.iter().enumerate() {
            if let Some(oids) = candidates.get(&sloc) {
                let oids = oids.clone();
                let reply = pool
                    .ask(shard, move |worker: &mut ShardWorker| {
                        worker.evaluate_lazy(window_start, &[sloc], &oids)
                    })
                    .map_err(|down| FlowError::EngineUnavailable {
                        detail: down.to_string(),
                    })?;
                replies.push(reply);
            }
        }
        let mut contributions: Vec<(ObjectId, ObjectContribution)> = Vec::new();
        for reply in replies {
            let shard = reply.shard();
            let mut report = reply.recv().map_err(|down| FlowError::EngineUnavailable {
                detail: down.to_string(),
            })?;
            if let Some(e) = report.error {
                return Err(e);
            }
            stats.presence_cells += report.evaluated_cells as u64;
            stats.cache_hits += report.cached_cells as u64;
            if let Some(t) = shard_traces.get_mut(shard) {
                t.presence_cells += report.evaluated_cells as u64;
                t.cache_hits += report.cached_cells as u64;
            }
            work.fresh_objects.extend(report.evaluated_oids);
            state.requested_cells += (report.evaluated_cells + report.cached_cells) as u64;
            contributions.append(&mut report.contributions);
        }
        contributions.sort_unstable_by_key(|(oid, _)| *oid);
        let mut flow = 0.0f64;
        for (oid, contribution) in &contributions {
            state.requested_objects.insert(*oid);
            if contribution.dp_fallback {
                state.dp_fallback_objects.insert(*oid);
            }
            for (&q, &score) in contribution.relevant.iter().zip(&contribution.scores) {
                debug_assert_eq!(q, sloc);
                // Zero scores are skipped exactly as the batch search
                // skips them, keeping the accumulation bit-identical.
                if score > 0.0 {
                    flow += score;
                }
            }
        }
        if let Some(m) = metrics {
            lazy_timer.record_into(&m.lazy_eval_ns);
        }
        Ok(flow)
    }
}

impl ContinuousEngine for ServeEngine {
    fn name(&self) -> &'static str {
        match self.config.strategy {
            AdvanceStrategy::Eager => "popflow-serve",
            AdvanceStrategy::BoundPruned => "popflow-serve-pruned",
        }
    }

    fn ingest(&mut self, record: Record) -> Result<(), FlowError> {
        self.check_poisoned()?;
        self.check_ingest_time(record.t)?;
        // Hot path: when metrics are on, the cost is one timestamp pair,
        // one histogram record, and one counter add — no allocation, no
        // locks, and no effect on what the shard computes.
        let timer = self.metrics.as_ref().map(|_| Timer::start());
        if self.first_ingest.is_none() {
            self.first_ingest = Some(record.t);
        }
        self.last_ingest = Some(record.t);
        let shard = self
            .pool
            .partitioner()
            .partition_of(u64::from(record.oid.0));
        self.pool
            .tell(shard, move |worker| worker.ingest(record))
            .map_err(|down| {
                let e = self.shard_down(down);
                self.poison(e)
            })?;
        self.stats.records_ingested += 1;
        if let (Some(m), Some(timer)) = (&self.metrics, timer) {
            timer.record_into(&m.ingest_ns);
            m.records_ingested.inc();
        }
        Ok(())
    }

    /// The single-query facade over [`ServeEngine::advance_all`]: every
    /// registered query advances, and the **primary** (first-registered)
    /// query's update is returned.
    fn advance(&mut self, now: Timestamp) -> Result<ContinuousUpdate, FlowError> {
        let primary =
            self.queries
                .first()
                .map(|r| r.id)
                .ok_or_else(|| FlowError::InvalidQuery {
                    detail: "advance with no registered queries".to_string(),
                })?;
        let updates = self.advance_all(now)?;
        updates
            .into_iter()
            .find(|(id, _)| *id == primary)
            .map(|(_, update)| update)
            .ok_or_else(|| FlowError::EngineUnavailable {
                detail: format!("advance_all returned no update for primary query {primary:?}"),
            })
    }

    fn current(&self) -> Option<&[SLocId]> {
        self.queries.first().and_then(|r| r.previous.as_deref())
    }
}

// No Drop impl: dropping the engine drops its `ShardPool`, which closes
// every worker queue and joins the threads.
