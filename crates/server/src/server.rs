//! The server runtime: accept/reader/writer threads around one
//! tick-budgeted scheduler thread that owns the serving engine.
//!
//! # Threading model
//!
//! - One **reader thread per connection** parses frames off the
//!   socket. Ingest batches go into the connection's bounded queue
//!   slice (or come straight back as a throttle); control frames
//!   (register/unregister/metrics) are enqueued as ops for the
//!   scheduler. Readers never touch the engine.
//! - One **writer thread per connection** drains a bounded channel of
//!   outbound frames. Every producer uses `try_send`: a consumer that
//!   stops reading fills its channel and is evicted, it can never
//!   bleed memory or stall the scheduler.
//! - The single **scheduler thread** owns the [`ServeEngine`]. Each
//!   tick it applies control ops, drains the ingest queues through a
//!   watermark-gated merge up to a record/byte budget, runs the window
//!   advances that became due (deadline- and count-bounded via
//!   [`ServeEngine::advance_due`]), pushes the resulting top-k deltas
//!   to subscribers, and reaps dead connections.
//!
//! # Determinism
//!
//! Clients partition objects across ingest connections (each object's
//! records always travel on the same connection, in time order). The
//! merge pops the globally smallest queued record, but only while no
//! *empty, still-open* ingest connection could later deliver an
//! earlier one — its watermark (the timestamp of the last record it
//! sent) is the proof. Advances run at bucket boundaries computed from
//! the merged event time, so the advance sequence — and therefore
//! every cache state and every flow bit pattern — is independent of
//! tick timing, thread scheduling, and network jitter.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use indoor_iupt::{Record, Timestamp};
use indoor_model::{IndoorSpace, SLocId};
use popflow_core::{ContinuousEngine, QueryId, QuerySet, QuerySpec, WindowSpec};
use popflow_obs::{Counter, Gauge, Histogram, MetricsRegistry, Snapshot};
use popflow_serve::{ServeConfig, ServeEngine};

use crate::metric_names as names;
use crate::protocol::{error_code, role, Frame, FrameReader, WireError, PROTOCOL_VERSION};
use crate::scenario::delta_frame;

/// How the server paces and bounds its work. Everything here is a
/// *bound*, not a target: an idle server spends its ticks parked on a
/// condition variable.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The wrapped engine's configuration (shards, bucket width, flow
    /// parameters, advance strategy). Engine metrics are forced on so
    /// a scrape always has phase timings to export.
    pub serve: ServeConfig,
    /// Scheduler tick period in milliseconds (≥ 1).
    pub tick_millis: u64,
    /// Most records one tick may drain from the ingest queues into the
    /// engine.
    pub tick_budget_records: usize,
    /// Most wire bytes' worth of records one tick may drain (estimated
    /// from encoded batch sizes).
    pub tick_budget_bytes: usize,
    /// Global bound on queued ingest records. A batch that would push
    /// the total past this is refused with a throttle frame — except
    /// that a connection with an empty queue may always enqueue one
    /// batch, so the merge can never deadlock on a starved gate. Peak
    /// resident queue is therefore at most `queue_capacity_records`
    /// plus one batch per connection.
    pub queue_capacity_records: usize,
    /// Most window advances one tick may run; the rest stay due and
    /// run on later ticks ([`ServeEngine::advance_due`]).
    pub max_advances_per_tick: usize,
    /// Soft deadline for a tick's advance phase, in microseconds
    /// (0 = none). Checked between advances; at least one due advance
    /// always runs.
    pub advance_deadline_micros: u64,
    /// Ingest connections that must have said Hello before the
    /// scheduler releases any record or runs any advance. Closes the
    /// startup race where an early connection's stream would otherwise
    /// be merged before a late one connects.
    pub min_ingest_streams: u32,
    /// Bound on each connection's outbound frame channel.
    pub outbound_frames: usize,
}

impl ServerConfig {
    /// Defaults tuned for the load experiment: 1 ms ticks, a drain
    /// budget that saturates well below four closed-loop producers,
    /// and a queue small enough to throttle visibly.
    pub fn new(serve: ServeConfig) -> Self {
        ServerConfig {
            serve: serve.with_metrics(true),
            tick_millis: 1,
            tick_budget_records: 4096,
            tick_budget_bytes: 1 << 20,
            queue_capacity_records: 65_536,
            max_advances_per_tick: 8,
            advance_deadline_micros: 2_000,
            min_ingest_streams: 0,
            outbound_frames: 1024,
        }
    }

    /// Overrides the tick period.
    pub fn with_tick_millis(mut self, tick_millis: u64) -> Self {
        self.tick_millis = tick_millis.max(1);
        self
    }

    /// Overrides the per-tick drain budgets.
    pub fn with_ingest_budget(mut self, records: usize, bytes: usize) -> Self {
        self.tick_budget_records = records.max(1);
        self.tick_budget_bytes = bytes.max(1);
        self
    }

    /// Overrides the global ingest queue capacity.
    pub fn with_queue_capacity(mut self, records: usize) -> Self {
        self.queue_capacity_records = records.max(1);
        self
    }

    /// Overrides the per-tick advance count budget and deadline.
    pub fn with_advance_budget(mut self, max_advances: usize, deadline_micros: u64) -> Self {
        self.max_advances_per_tick = max_advances.max(1);
        self.advance_deadline_micros = deadline_micros;
        self
    }

    /// Overrides the ingest-stream release gate.
    pub fn with_min_ingest_streams(mut self, streams: u32) -> Self {
        self.min_ingest_streams = streams;
        self
    }
}

/// Pre-resolved handles into the server's own registry (separate from
/// the engine's `serve.*` registry; a scrape concatenates both).
struct ServerMetrics {
    ingest_ns: Histogram,
    tick_ns: Histogram,
    tick_lag_ns: Histogram,
    batch_latency_ns: Histogram,
    queue_depth: Gauge,
    queue_peak: Gauge,
    throttles: Counter,
    frames_in: Counter,
    frames_out: Counter,
    protocol_errors: Counter,
    records_rejected: Counter,
    records_ingested: Counter,
    advances_deferred: Counter,
    advances: Counter,
    connections: Gauge,
    slow_consumer_drops: Counter,
}

impl ServerMetrics {
    fn resolve(r: &MetricsRegistry) -> Self {
        ServerMetrics {
            ingest_ns: r.histogram(names::INGEST_NS),
            tick_ns: r.histogram(names::TICK_NS),
            tick_lag_ns: r.histogram(names::TICK_LAG_NS),
            batch_latency_ns: r.histogram(names::BATCH_LATENCY_NS),
            queue_depth: r.gauge(names::QUEUE_DEPTH),
            queue_peak: r.gauge(names::QUEUE_PEAK),
            throttles: r.counter(names::THROTTLES),
            frames_in: r.counter(names::FRAMES_IN),
            frames_out: r.counter(names::FRAMES_OUT),
            protocol_errors: r.counter(names::PROTOCOL_ERRORS),
            records_rejected: r.counter(names::RECORDS_REJECTED),
            records_ingested: r.counter(names::RECORDS_INGESTED),
            advances_deferred: r.counter(names::ADVANCES_DEFERRED),
            advances: r.counter(names::ADVANCES),
            connections: r.gauge(names::CONNECTIONS),
            slow_consumer_drops: r.counter(names::SLOW_CONSUMER_DROPS),
        }
    }
}

/// One message to a connection's writer thread.
enum OutMsg {
    /// Encode and send a protocol frame.
    Frame(Frame),
    /// Send raw bytes (the HTTP metrics response).
    Raw(Vec<u8>),
    /// Flush nothing further; shut the socket down and exit.
    Close,
}

/// A queued, partially drained ingest batch.
struct PendingBatch {
    seq: u64,
    records: Vec<Record>,
    /// Index of the next undrained record (`< records.len()` while the
    /// batch is queued).
    next: usize,
    /// Estimated wire bytes per record, for the byte budget.
    per_record_bytes: usize,
    accepted: u32,
    rejected: u32,
    enqueued: Instant,
}

/// Scheduler-side view of one connection.
struct ConnState {
    role: u8,
    out: SyncSender<OutMsg>,
    queue: VecDeque<PendingBatch>,
    /// Timestamp (ms) of the last record this connection enqueued —
    /// its promise that nothing earlier will ever arrive on it.
    watermark: Option<i64>,
    /// Set while any throttled batch awaits re-admission:
    /// `(expected, max_refused)` — the next seq that must be
    /// re-admitted, and the highest seq refused while the gate was up.
    /// Every batch except `expected` is throttled (extending
    /// `max_refused`), and admitting `expected` advances the gate to
    /// `expected + 1` until every refused seq has been re-admitted in
    /// order. Without the gate, a later pipelined batch could be
    /// admitted ahead of a refused one and advance the watermark past
    /// it, making the re-send an unrecoverable order violation —
    /// clearing it after only the first re-admission would do the same
    /// to the refused batches still pending behind it.
    throttle_gate: Option<(u64, u64)>,
    /// No more batches will arrive (StreamEnd, or the socket closed):
    /// the connection stops gating the merge once its queue drains.
    ended: bool,
    /// The connection is dead; reap it once its queue drains.
    gone: bool,
}

/// Control work readers hand to the scheduler.
enum ControlOp {
    Register {
        conn: u64,
        k: u32,
        bucket_millis: i64,
        window_buckets: u32,
        slocs: Vec<u32>,
    },
    Unregister {
        conn: u64,
        query_id: u64,
    },
    Metrics {
        conn: u64,
        http: bool,
    },
}

/// Mutex-guarded state shared by every thread.
struct Inner {
    conns: BTreeMap<u64, ConnState>,
    control: VecDeque<ControlOp>,
    /// Ingest connections that have completed the Hello handshake
    /// (monotone; compared against `min_ingest_streams`).
    ingest_seen: u32,
    total_queued: usize,
    peak_queued: usize,
    shutdown: bool,
    next_conn: u64,
}

struct Shared {
    inner: Mutex<Inner>,
    wake: Condvar,
    registry: MetricsRegistry,
    metrics: ServerMetrics,
    config: ServerConfig,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, Inner> {
        // A panicking holder has already torn the process state; the
        // data under this mutex is all reapable bookkeeping, so keep
        // serving rather than cascading the poison.
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn is_shutdown(&self) -> bool {
        self.lock().shutdown
    }

    /// Queues a frame on a connection's writer, evicting the
    /// connection if its channel is full (slow consumer).
    fn send_frame(&self, inner: &mut Inner, conn: u64, frame: Frame) {
        let Some(state) = inner.conns.get_mut(&conn) else {
            return;
        };
        match state.out.try_send(OutMsg::Frame(frame)) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) => {
                self.metrics.slow_consumer_drops.inc();
                state.gone = true;
                state.ended = true;
            }
            Err(TrySendError::Disconnected(_)) => {
                state.gone = true;
                state.ended = true;
            }
        }
    }
}

/// A running `popflow-server`: the listener plus its thread family.
/// Dropping (or calling [`Server::shutdown`]) stops everything and
/// joins the accept and scheduler threads.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    scheduler: Option<JoinHandle<()>>,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `bind` (e.g. `"127.0.0.1:0"`) and starts serving
    /// `config` over `space`.
    pub fn start(
        space: Arc<IndoorSpace>,
        config: ServerConfig,
        bind: &str,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;
        let registry = MetricsRegistry::new();
        let metrics = ServerMetrics::resolve(&registry);
        let engine = ServeEngine::new(space, config.serve.clone());
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                conns: BTreeMap::new(),
                control: VecDeque::new(),
                ingest_seen: 0,
                total_queued: 0,
                peak_queued: 0,
                shutdown: false,
                next_conn: 1,
            }),
            wake: Condvar::new(),
            registry,
            metrics,
            config,
        });
        let scheduler = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("popflow-scheduler".to_string())
                .spawn(move || scheduler_loop(shared, engine))?
        };
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("popflow-accept".to_string())
                .spawn(move || accept_loop(shared, listener))?
        };
        Ok(Server {
            addr,
            shared,
            scheduler: Some(scheduler),
            accept: Some(accept),
        })
    }

    /// The bound address (with the OS-assigned port when bound to
    /// port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A point-in-time export of the server-side registry (the
    /// engine's own registry travels over the wire in a metrics
    /// scrape).
    pub fn server_snapshot(&self) -> Snapshot {
        self.shared.registry.snapshot()
    }

    /// Stops the scheduler and listener and joins them. Idempotent.
    pub fn shutdown(&mut self) {
        {
            let mut inner = self.shared.lock();
            if inner.shutdown && self.scheduler.is_none() && self.accept.is_none() {
                return;
            }
            inner.shutdown = true;
        }
        self.shared.wake.notify_all();
        if let Some(h) = self.scheduler.take() {
            let _ = h.join();
        }
        // Unblock the accept call with one throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ------------------------------------------------------------- accept

fn accept_loop(shared: Arc<Shared>, listener: TcpListener) {
    for stream in listener.incoming() {
        if shared.is_shutdown() {
            break;
        }
        let Ok(stream) = stream else { continue };
        let _ = stream.set_nodelay(true);
        // The read timeout is what lets reader threads poll the
        // shutdown flag while idle.
        let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
        let Ok(write_half) = stream.try_clone() else {
            continue;
        };
        let (tx, rx) = std::sync::mpsc::sync_channel(shared.config.outbound_frames.max(8));
        let conn_id = {
            let mut inner = shared.lock();
            let id = inner.next_conn;
            inner.next_conn += 1;
            inner.conns.insert(
                id,
                ConnState {
                    role: role::CONTROL,
                    out: tx.clone(),
                    queue: VecDeque::new(),
                    watermark: None,
                    throttle_gate: None,
                    ended: false,
                    gone: false,
                },
            );
            shared.metrics.connections.set(inner.conns.len() as u64);
            id
        };
        let frames_out = shared.metrics.frames_out.clone();
        let _ = std::thread::Builder::new()
            .name(format!("popflow-writer-{conn_id}"))
            .spawn(move || writer_loop(rx, write_half, frames_out));
        let reader_shared = Arc::clone(&shared);
        let _ = std::thread::Builder::new()
            .name(format!("popflow-reader-{conn_id}"))
            .spawn(move || reader_loop(reader_shared, conn_id, stream, tx));
    }
    // Whatever connections remain (including ones created after the
    // scheduler exited) get their writers released here.
    let mut inner = shared.lock();
    for state in inner.conns.values() {
        let _ = state.out.try_send(OutMsg::Close);
    }
    inner.conns.clear();
    shared.metrics.connections.set(0);
}

// ------------------------------------------------------------- writer

fn writer_loop(rx: Receiver<OutMsg>, stream: TcpStream, frames_out: Counter) {
    let mut w = std::io::BufWriter::new(stream);
    while let Ok(msg) = rx.recv() {
        let ok = match msg {
            OutMsg::Frame(frame) => {
                let sent = frame.write_to(&mut w).is_ok() && w.flush().is_ok();
                if sent {
                    frames_out.inc();
                }
                sent
            }
            OutMsg::Raw(bytes) => w.write_all(&bytes).is_ok() && w.flush().is_ok(),
            OutMsg::Close => false,
        };
        if !ok {
            break;
        }
    }
    if let Ok(stream) = w.into_inner() {
        let _ = stream.shutdown(Shutdown::Both);
    }
}

// ------------------------------------------------------------- reader

fn reader_loop(shared: Arc<Shared>, conn_id: u64, stream: TcpStream, out: SyncSender<OutMsg>) {
    let mut fr = FrameReader::new(stream);
    match sniff_http(&shared, &mut fr) {
        Sniff::Http => {
            // Consume the request head first — closing the socket
            // with unread request bytes risks a reset that clobbers
            // the response — then hand the scrape to the scheduler
            // (it owns the engine registry); the writer sends the
            // response and closes.
            read_http_head(&shared, &mut fr);
            let mut inner = shared.lock();
            inner.control.push_back(ControlOp::Metrics {
                conn: conn_id,
                http: true,
            });
            drop(inner);
            shared.wake.notify_all();
            return;
        }
        Sniff::Binary => {}
        Sniff::Closed => {
            disconnect(&shared, conn_id);
            return;
        }
    }
    if !handshake(&shared, conn_id, &mut fr, &out) {
        disconnect(&shared, conn_id);
        return;
    }
    loop {
        if shared.is_shutdown() {
            break;
        }
        match fr.next_frame() {
            Ok(Some(frame)) => {
                shared.metrics.frames_in.inc();
                handle_frame(&shared, conn_id, frame, &out);
            }
            Ok(None) => break,
            Err(e) if e.is_interrupted() => continue,
            Err(e) => {
                if let WireError::Protocol(p) = &e {
                    shared.metrics.protocol_errors.inc();
                    let _ = out.try_send(OutMsg::Frame(Frame::Error {
                        code: error_code::PROTOCOL,
                        detail: p.to_string(),
                    }));
                }
                if !e.is_recoverable() {
                    break;
                }
            }
        }
    }
    disconnect(&shared, conn_id);
}

enum Sniff {
    Http,
    Binary,
    Closed,
}

/// Distinguishes an HTTP scrape (`GET /metrics`) from the binary
/// protocol by the first four bytes — no binary frame starts with
/// `"GET "` (that length prefix would be oversized).
fn sniff_http(shared: &Shared, fr: &mut FrameReader<TcpStream>) -> Sniff {
    loop {
        match fr.peek(4) {
            Ok(Some(head)) => {
                return if head == b"GET " {
                    Sniff::Http
                } else {
                    Sniff::Binary
                }
            }
            Ok(None) => return Sniff::Closed,
            Err(e) if e.is_interrupted() => {
                if shared.is_shutdown() {
                    return Sniff::Closed;
                }
            }
            Err(_) => return Sniff::Closed,
        }
    }
}

/// Buffers the HTTP request until the blank line ending its head (or
/// 8 KiB, or EOF/shutdown — a scrape request is one small GET).
fn read_http_head(shared: &Shared, fr: &mut FrameReader<TcpStream>) {
    loop {
        let have = fr.buffered().len();
        if fr.buffered().windows(4).any(|w| w == b"\r\n\r\n") || have > 8192 {
            return;
        }
        match fr.peek(have + 1) {
            Ok(Some(_)) => {}
            Ok(None) => return,
            Err(e) if e.is_interrupted() => {
                if shared.is_shutdown() {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Runs the Hello/Welcome exchange; `false` aborts the connection.
fn handshake(
    shared: &Shared,
    conn_id: u64,
    fr: &mut FrameReader<TcpStream>,
    out: &SyncSender<OutMsg>,
) -> bool {
    let hello = loop {
        match fr.next_frame() {
            Ok(Some(frame)) => break frame,
            Ok(None) => return false,
            Err(e) if e.is_interrupted() => {
                if shared.is_shutdown() {
                    return false;
                }
            }
            Err(_) => {
                shared.metrics.protocol_errors.inc();
                let _ = out.try_send(OutMsg::Frame(Frame::Error {
                    code: error_code::PROTOCOL,
                    detail: "expected Hello".to_string(),
                }));
                return false;
            }
        }
    };
    let Frame::Hello { version, role: r } = hello else {
        shared.metrics.protocol_errors.inc();
        let _ = out.try_send(OutMsg::Frame(Frame::Error {
            code: error_code::PROTOCOL,
            detail: "first frame must be Hello".to_string(),
        }));
        return false;
    };
    if version != PROTOCOL_VERSION {
        let _ = out.try_send(OutMsg::Frame(Frame::Error {
            code: error_code::REJECTED,
            detail: format!("protocol version {version} != {PROTOCOL_VERSION}"),
        }));
        return false;
    }
    shared.metrics.frames_in.inc();
    {
        let mut inner = shared.lock();
        let Some(state) = inner.conns.get_mut(&conn_id) else {
            return false;
        };
        state.role = r;
        if r == role::INGEST {
            inner.ingest_seen += 1;
        }
    }
    shared.wake.notify_all();
    let _ = out.try_send(OutMsg::Frame(Frame::Welcome {
        version: PROTOCOL_VERSION,
        conn_id,
    }));
    true
}

fn handle_frame(shared: &Shared, conn_id: u64, frame: Frame, out: &SyncSender<OutMsg>) {
    match frame {
        Frame::IngestBatch { seq, records } => handle_batch(shared, conn_id, seq, records, out),
        Frame::Register {
            k,
            bucket_millis,
            window_buckets,
            slocs,
        } => {
            let mut inner = shared.lock();
            inner.control.push_back(ControlOp::Register {
                conn: conn_id,
                k,
                bucket_millis,
                window_buckets,
                slocs,
            });
            drop(inner);
            shared.wake.notify_all();
        }
        Frame::Unregister { query_id } => {
            let mut inner = shared.lock();
            inner.control.push_back(ControlOp::Unregister {
                conn: conn_id,
                query_id,
            });
            drop(inner);
            shared.wake.notify_all();
        }
        Frame::StreamEnd => {
            let mut inner = shared.lock();
            if let Some(state) = inner.conns.get_mut(&conn_id) {
                state.ended = true;
            }
            drop(inner);
            shared.wake.notify_all();
        }
        Frame::MetricsRequest => {
            let mut inner = shared.lock();
            inner.control.push_back(ControlOp::Metrics {
                conn: conn_id,
                http: false,
            });
            drop(inner);
            shared.wake.notify_all();
        }
        // A second Hello, or a server-originated kind echoed back.
        _ => {
            let _ = out.try_send(OutMsg::Frame(Frame::Error {
                code: error_code::REJECTED,
                detail: "unexpected frame kind".to_string(),
            }));
        }
    }
}

fn handle_batch(
    shared: &Shared,
    conn_id: u64,
    seq: u64,
    records: Vec<Record>,
    out: &SyncSender<OutMsg>,
) {
    if records.is_empty() {
        let _ = out.try_send(OutMsg::Frame(Frame::BatchAck {
            seq,
            accepted: 0,
            rejected: 0,
        }));
        return;
    }
    // Estimated wire bytes, for the scheduler's byte budget: header
    // 14 per record + 12 per sample (see the protocol encoder).
    let wire_bytes: usize = records
        .iter()
        .map(|r| 14 + 12 * r.samples.samples().len())
        .sum();
    let n = records.len();
    let mut inner = shared.lock();
    let capacity = shared.config.queue_capacity_records;
    let total_queued = inner.total_queued;
    let Some(state) = inner.conns.get_mut(&conn_id) else {
        return;
    };
    if state.role != role::INGEST {
        let _ = out.try_send(OutMsg::Frame(Frame::Error {
            code: error_code::REJECTED,
            detail: "ingest batch on a control connection".to_string(),
        }));
        return;
    }
    if state.ended {
        let _ = out.try_send(OutMsg::Frame(Frame::Error {
            code: error_code::REJECTED,
            detail: "ingest batch after StreamEnd".to_string(),
        }));
        return;
    }
    // A throttled batch must be re-admitted before anything newer: a
    // pipelining client has already sent the batches behind it, and
    // admitting one of those would advance the watermark past the
    // refused batch, turning its re-send into an order violation. A
    // refusal here extends the gate, so a batch sent fresh while the
    // connection was gated joins the ordered re-send obligation.
    if let Some((expected, max_refused)) = state.throttle_gate {
        if seq != expected {
            state.throttle_gate = Some((expected, max_refused.max(seq)));
            shared.metrics.throttles.inc();
            let _ = out.try_send(OutMsg::Frame(Frame::Throttle {
                seq,
                queued_records: total_queued as u64,
                capacity_records: capacity as u64,
            }));
            return;
        }
    }
    // The merge's correctness rests on per-connection time order;
    // refuse a violating batch wholesale rather than corrupting the
    // global order.
    let mut prev = state.watermark.unwrap_or(i64::MIN);
    for r in &records {
        if r.t.millis() < prev {
            let _ = out.try_send(OutMsg::Frame(Frame::Error {
                code: error_code::REJECTED,
                detail: format!(
                    "batch {seq} breaks this connection's time order \
                     ({} after watermark {prev})",
                    r.t.millis()
                ),
            }));
            return;
        }
        prev = r.t.millis();
    }
    // Backpressure: over global capacity the batch is refused — unless
    // this connection's queue is empty, whose head batch must always
    // be admittable or the merge could deadlock on its gate.
    if total_queued + n > capacity && !state.queue.is_empty() {
        let max_refused = match state.throttle_gate {
            Some((_, m)) => m.max(seq),
            None => seq,
        };
        state.throttle_gate = Some((seq, max_refused));
        shared.metrics.throttles.inc();
        let _ = out.try_send(OutMsg::Frame(Frame::Throttle {
            seq,
            queued_records: total_queued as u64,
            capacity_records: capacity as u64,
        }));
        return;
    }
    // Walk the gate forward instead of clearing it: the connection
    // stays gated until every refused seq has been re-admitted in
    // order, so a newer batch can never slip past one still pending
    // re-send (the empty-queue reserve above would otherwise admit it).
    state.throttle_gate = match state.throttle_gate {
        Some((expected, max_refused)) if expected < max_refused => {
            Some((expected + 1, max_refused))
        }
        _ => None,
    };
    state.watermark = Some(prev);
    state.queue.push_back(PendingBatch {
        seq,
        records,
        next: 0,
        per_record_bytes: (wire_bytes / n).max(1),
        accepted: 0,
        rejected: 0,
        enqueued: Instant::now(),
    });
    inner.total_queued += n;
    if inner.total_queued > inner.peak_queued {
        inner.peak_queued = inner.total_queued;
        shared.metrics.queue_peak.set(inner.peak_queued as u64);
    }
    drop(inner);
    shared.wake.notify_all();
}

/// Marks a connection dead (socket closed or protocol failure); the
/// scheduler drains whatever it already queued, then reaps it.
fn disconnect(shared: &Shared, conn_id: u64) {
    let mut inner = shared.lock();
    if let Some(state) = inner.conns.get_mut(&conn_id) {
        state.ended = true;
        state.gone = true;
    }
    drop(inner);
    shared.wake.notify_all();
}

// ---------------------------------------------------------- scheduler

fn scheduler_loop(shared: Arc<Shared>, mut engine: ServeEngine) {
    let cfg = shared.config.clone();
    let tick = Duration::from_millis(cfg.tick_millis.max(1));
    let mut subs: BTreeMap<u64, BTreeSet<u64>> = BTreeMap::new();
    let mut next_tick = Instant::now() + tick;
    loop {
        // Park until the tick boundary (woken early by new work or
        // shutdown; early wakes just re-check the clock).
        {
            let mut inner = shared.lock();
            loop {
                if inner.shutdown {
                    for state in inner.conns.values() {
                        let _ = state.out.try_send(OutMsg::Close);
                    }
                    inner.conns.clear();
                    shared.metrics.connections.set(0);
                    return;
                }
                let now = Instant::now();
                if now >= next_tick {
                    break;
                }
                let (guard, _) = shared
                    .wake
                    .wait_timeout(inner, next_tick - now)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                inner = guard;
            }
        }
        let tick_start = Instant::now();
        let lag = tick_start.saturating_duration_since(next_tick);
        shared.metrics.tick_lag_ns.record(lag.as_nanos() as u64);
        next_tick += tick;
        if next_tick < tick_start {
            next_tick = tick_start;
        }

        run_control_ops(&shared, &mut engine, &mut subs);
        let bound = drain_ingest(&shared, &mut engine, &cfg);
        run_advances(&shared, &mut engine, &cfg, &subs, bound, tick_start);
        reap_connections(&shared, &mut subs);
        shared
            .metrics
            .tick_ns
            .record(tick_start.elapsed().as_nanos() as u64);
    }
}

fn run_control_ops(
    shared: &Shared,
    engine: &mut ServeEngine,
    subs: &mut BTreeMap<u64, BTreeSet<u64>>,
) {
    loop {
        let op = {
            let mut inner = shared.lock();
            inner.control.pop_front()
        };
        let Some(op) = op else { break };
        match op {
            ControlOp::Register {
                conn,
                k,
                bucket_millis,
                window_buckets,
                slocs,
            } => {
                // The decoder guaranteed k ≥ 1, positive bucket width,
                // window ≥ 1 bucket, and a non-empty sloc list, so the
                // constructors' invariants hold.
                let query_set = QuerySet::new(slocs.into_iter().map(SLocId).collect());
                let spec = QuerySpec::new(
                    k as usize,
                    query_set,
                    WindowSpec::new(bucket_millis, window_buckets as usize),
                );
                let reply = match engine.register(spec) {
                    Ok(id) => {
                        subs.entry(id.0).or_default().insert(conn);
                        Frame::Registered { query_id: id.0 }
                    }
                    Err(e) => Frame::Error {
                        code: error_code::REJECTED,
                        detail: e.to_string(),
                    },
                };
                let mut inner = shared.lock();
                shared.send_frame(&mut inner, conn, reply);
            }
            ControlOp::Unregister { conn, query_id } => {
                let reply = match engine.unregister(QueryId(query_id)) {
                    Ok(()) => {
                        subs.remove(&query_id);
                        Frame::Unregistered { query_id }
                    }
                    Err(e) => Frame::Error {
                        code: error_code::REJECTED,
                        detail: e.to_string(),
                    },
                };
                let mut inner = shared.lock();
                shared.send_frame(&mut inner, conn, reply);
            }
            ControlOp::Metrics { conn, http } => {
                let text = scrape_text(shared, engine);
                let mut inner = shared.lock();
                if http {
                    if let Some(state) = inner.conns.get_mut(&conn) {
                        let _ = state.out.try_send(OutMsg::Raw(http_response(&text)));
                        let _ = state.out.try_send(OutMsg::Close);
                        state.ended = true;
                        state.gone = true;
                    }
                } else {
                    shared.send_frame(&mut inner, conn, Frame::MetricsText { text });
                }
            }
        }
    }
}

/// The full scrape body: the server's registry followed by the
/// engine's (`server.*` and `serve.*` names never collide).
fn scrape_text(shared: &Shared, engine: &ServeEngine) -> String {
    let mut text = shared.registry.snapshot().to_prometheus();
    text.push_str(&engine.metrics().snapshot().to_prometheus());
    text
}

fn http_response(body: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() + 128);
    let _ = write!(
        out,
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    out.extend_from_slice(body.as_bytes());
    out
}

/// Drains queued records into the engine through the watermark-gated
/// merge, up to the tick budgets. Returns the advance upper bound: the
/// smallest timestamp any connection could still deliver (`i64::MIN`
/// while the release gate holds, `i64::MAX` once every stream ended
/// and drained).
fn drain_ingest(shared: &Shared, engine: &mut ServeEngine, cfg: &ServerConfig) -> i64 {
    let mut inner = shared.lock();
    if inner.ingest_seen < cfg.min_ingest_streams {
        shared.metrics.queue_depth.set(inner.total_queued as u64);
        return i64::MIN;
    }
    let mut drained = 0usize;
    let mut bytes = 0usize;
    while drained < cfg.tick_budget_records && bytes < cfg.tick_budget_bytes {
        // Candidate: the globally smallest queued head. Floor: the
        // earliest timestamp an *empty, still-open* connection might
        // still send (its watermark; `i64::MIN` before its first
        // batch). Popping above the floor would risk reordering.
        let mut floor = i64::MAX;
        let mut best: Option<(u64, i64)> = None;
        for (&id, state) in &inner.conns {
            if state.role != role::INGEST {
                continue;
            }
            match state.queue.front().and_then(|b| b.records.get(b.next)) {
                Some(r) => {
                    let t = r.t.millis();
                    if best.is_none_or(|(_, bt)| t < bt) {
                        best = Some((id, t));
                    }
                }
                None => {
                    if !state.ended {
                        floor = floor.min(state.watermark.unwrap_or(i64::MIN));
                    }
                }
            }
        }
        let Some((conn_id, t)) = best else { break };
        if t > floor {
            break;
        }
        let Some(record) = inner.conns.get_mut(&conn_id).and_then(|state| {
            let batch = state.queue.front_mut()?;
            let record = batch.records.get(batch.next).cloned()?;
            batch.next += 1;
            Some((record, batch.per_record_bytes))
        }) else {
            break;
        };
        let (record, per_record_bytes) = record;
        inner.total_queued = inner.total_queued.saturating_sub(1);
        drained += 1;
        bytes += per_record_bytes;
        let t0 = Instant::now();
        let accepted = engine.ingest(record).is_ok();
        shared
            .metrics
            .ingest_ns
            .record(t0.elapsed().as_nanos() as u64);
        if accepted {
            shared.metrics.records_ingested.inc();
        } else {
            shared.metrics.records_rejected.inc();
        }
        let mut ack = None;
        if let Some(state) = inner.conns.get_mut(&conn_id) {
            if let Some(batch) = state.queue.front_mut() {
                if accepted {
                    batch.accepted += 1;
                } else {
                    batch.rejected += 1;
                }
                if batch.next >= batch.records.len() {
                    ack = state.queue.pop_front();
                }
            }
        }
        if let Some(done) = ack {
            shared
                .metrics
                .batch_latency_ns
                .record(done.enqueued.elapsed().as_nanos() as u64);
            shared.send_frame(
                &mut inner,
                conn_id,
                Frame::BatchAck {
                    seq: done.seq,
                    accepted: done.accepted,
                    rejected: done.rejected,
                },
            );
        }
    }
    shared.metrics.queue_depth.set(inner.total_queued as u64);
    // Advance bound: nothing at or before it can still arrive.
    let mut bound = i64::MAX;
    for state in inner.conns.values() {
        if state.role != role::INGEST {
            continue;
        }
        let gate = match state.queue.front().and_then(|b| b.records.get(b.next)) {
            Some(r) => r.t.millis(),
            None if state.ended => i64::MAX,
            None => state.watermark.unwrap_or(i64::MIN),
        };
        bound = bound.min(gate);
    }
    bound
}

fn run_advances(
    shared: &Shared,
    engine: &mut ServeEngine,
    cfg: &ServerConfig,
    subs: &BTreeMap<u64, BTreeSet<u64>>,
    bound: i64,
    tick_start: Instant,
) {
    if bound == i64::MIN || engine.query_ids().is_empty() {
        return;
    }
    let deadline = (cfg.advance_deadline_micros > 0)
        .then(|| tick_start + Duration::from_micros(cfg.advance_deadline_micros));
    match engine.advance_due(Timestamp(bound), deadline, cfg.max_advances_per_tick.max(1)) {
        Ok((runs, remaining)) => {
            if remaining > 0 {
                shared.metrics.advances_deferred.add(remaining as u64);
            }
            if runs.is_empty() {
                return;
            }
            let mut inner = shared.lock();
            for (t, updates) in runs {
                shared.metrics.advances.inc();
                for (qid, update) in updates {
                    let Some(subscribers) = subs.get(&qid.0) else {
                        continue;
                    };
                    for &conn in subscribers {
                        shared.send_frame(&mut inner, conn, delta_frame(qid, t, &update));
                    }
                }
            }
        }
        Err(e) => {
            // The engine poisons itself on a failed advance; there is
            // nothing left to serve. Tell every client and stop.
            let mut inner = shared.lock();
            let conn_ids: Vec<u64> = inner.conns.keys().copied().collect();
            for conn in conn_ids {
                shared.send_frame(
                    &mut inner,
                    conn,
                    Frame::Error {
                        code: error_code::UNAVAILABLE,
                        detail: e.to_string(),
                    },
                );
            }
            inner.shutdown = true;
            drop(inner);
            shared.wake.notify_all();
        }
    }
}

/// Removes dead connections whose queues have fully drained; dropping
/// their [`ConnState`] releases the writer channel, which closes the
/// socket.
fn reap_connections(shared: &Shared, subs: &mut BTreeMap<u64, BTreeSet<u64>>) {
    let mut inner = shared.lock();
    let dead: Vec<u64> = inner
        .conns
        .iter()
        .filter(|(_, state)| state.gone && state.queue.is_empty())
        .map(|(&id, _)| id)
        .collect();
    if dead.is_empty() {
        return;
    }
    for id in dead {
        if let Some(state) = inner.conns.remove(&id) {
            let _ = state.out.try_send(OutMsg::Close);
        }
        for subscribers in subs.values_mut() {
            subscribers.remove(&id);
        }
    }
    shared.metrics.connections.set(inner.conns.len() as u64);
}
