//! Ground-truth flows and rankings extracted from the exact trajectories —
//! the reference the paper's effectiveness metrics (recall, Kendall τ)
//! compare against. A ground-truth "flow" of an S-location is the number
//! of distinct objects that were physically inside it at any moment of the
//! query window (each object counted once, consistent with Definition 1's
//! dwell-time independence).

use indoor_iupt::TimeInterval;
use indoor_model::{IndoorSpace, SLocId};

use crate::trajectory::Trajectory;

/// Ground-truth flow per S-location (dense, indexed by S-location id).
pub fn ground_truth_flows(
    space: &IndoorSpace,
    trajectories: &[Trajectory],
    interval: TimeInterval,
) -> Vec<f64> {
    let mut flows = vec![0.0; space.slocs().len()];
    let mut visited: Vec<bool> = vec![false; space.slocs().len()];
    for traj in trajectories {
        visited.iter_mut().for_each(|v| *v = false);
        for part in traj.partitions_visited(interval) {
            for &sloc in space.slocs_of_partition(part) {
                if !visited[sloc.index()] {
                    visited[sloc.index()] = true;
                    flows[sloc.index()] += 1.0;
                }
            }
        }
    }
    flows
}

/// The ground-truth top-k ranking among the members of `candidates`
/// (descending flow, ties by ascending id — the same rule the query
/// algorithms use).
pub fn ground_truth_topk(
    space: &IndoorSpace,
    trajectories: &[Trajectory],
    interval: TimeInterval,
    candidates: &[SLocId],
    k: usize,
) -> Vec<(SLocId, f64)> {
    let flows = ground_truth_flows(space, trajectories, interval);
    let mut ranked: Vec<(SLocId, f64)> =
        candidates.iter().map(|&s| (s, flows[s.index()])).collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    ranked.truncate(k);
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::building_gen::{generate_building, BuildingGenConfig};
    use crate::mobility::{simulate_mobility, MobilityConfig};
    use indoor_iupt::Timestamp;

    fn world() -> (IndoorSpace, Vec<Trajectory>) {
        let space = generate_building(&BuildingGenConfig::tiny());
        let trajs = simulate_mobility(&space, &MobilityConfig::tiny());
        (space, trajs)
    }

    fn full_window() -> TimeInterval {
        TimeInterval::new(Timestamp::from_secs(0), Timestamp::from_secs(600))
    }

    #[test]
    fn flows_bounded_by_object_count() {
        let (space, trajs) = world();
        let flows = ground_truth_flows(&space, &trajs, full_window());
        assert_eq!(flows.len(), space.slocs().len());
        for &f in &flows {
            assert!(f >= 0.0 && f <= trajs.len() as f64);
        }
        // Somebody was somewhere.
        assert!(flows.iter().sum::<f64>() > 0.0);
    }

    #[test]
    fn empty_interval_before_birth_counts_nothing() {
        let (space, trajs) = world();
        let iv = TimeInterval::new(Timestamp::from_secs(10_000), Timestamp::from_secs(10_001));
        let flows = ground_truth_flows(&space, &trajs, iv);
        assert!(flows.iter().all(|&f| f == 0.0));
    }

    #[test]
    fn topk_is_sorted_and_truncated() {
        let (space, trajs) = world();
        let candidates: Vec<SLocId> = space.slocs().iter().map(|s| s.id).collect();
        let top = ground_truth_topk(&space, &trajs, full_window(), &candidates, 5);
        assert_eq!(top.len(), 5);
        for w in top.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn monotone_in_interval_length() {
        let (space, trajs) = world();
        let short = ground_truth_flows(
            &space,
            &trajs,
            TimeInterval::new(Timestamp::from_secs(0), Timestamp::from_secs(100)),
        );
        let long = ground_truth_flows(&space, &trajs, full_window());
        for (s, l) in short.iter().zip(long.iter()) {
            assert!(l >= s, "flows must grow with the window");
        }
    }
}
