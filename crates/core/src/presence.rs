//! Pass probabilities (Eq. 2) and uncertainty-aware object presence
//! (Eq. 1) evaluated by explicit path enumeration — the paper's engine.

use indoor_iupt::SampleSet;
use indoor_model::{IndoorSpace, PLocId, SLocId};

use crate::config::{FlowConfig, FlowError, Normalization, PresenceEngine};
use crate::paths::{build_paths, full_product_mass, PathSet};
use crate::reduction::scan_sequence;

/// The probability that one sequential P-location pair passes `q`:
/// `pr_{locj,locj+1 ⊃ q} = |{c ∈ C | c covers q}| / |C|` where
/// `C = MIL[locj, locj+1]` (§2.3). Zero when the pair is disconnected.
#[inline]
pub fn pair_pass_probability(space: &IndoorSpace, a: PLocId, b: PLocId, q: SLocId) -> f64 {
    let cells = space.matrix().cells_between(a, b);
    if cells.is_empty() {
        return 0.0;
    }
    let covering = cells.iter().filter(|&c| space.covers(c, q)).count();
    covering as f64 / cells.len() as f64
}

/// [`pair_pass_probability`] for many query locations in **one**
/// `MIL[a, b]` cell scan — the flat-pass kernel behind
/// [`crate::dp::presence_dp_multi`]. Writes `pr_{a,b ⊃ qs[k]}` into
/// `out[k]`.
///
/// Bit-identity with the single-query kernel: covering counts
/// accumulate as exact small integers in `f64` (`+1.0` per covering
/// cell, in the fixed cell order of the matrix), so every final
/// division sees the identical `covering as f64 / cells.len() as f64`
/// operands the single-query kernel produces.
pub fn pair_pass_probabilities(
    space: &IndoorSpace,
    a: PLocId,
    b: PLocId,
    qs: &[SLocId],
    out: &mut [f64],
) {
    debug_assert_eq!(qs.len(), out.len());
    out.fill(0.0);
    let cells = space.matrix().cells_between(a, b);
    if cells.is_empty() {
        return;
    }
    for c in cells.iter() {
        for (slot, &q) in out.iter_mut().zip(qs) {
            if space.covers(c, q) {
                *slot += 1.0;
            }
        }
    }
    let denom = cells.len() as f64;
    for slot in out.iter_mut() {
        *slot /= denom;
    }
}

/// The pass probability of a whole path with respect to `q` (Eq. 2):
/// `pr_{φ ⊃ q} = 1 − Π_j (1 − pr_{locj,locj+1 ⊃ q})`.
///
/// A single-location path has no sequential pair, so its pass probability
/// is 0 (`1 − empty product`); see DESIGN.md §2.4.
pub fn path_pass_probability(space: &IndoorSpace, locs: &[PLocId], q: SLocId) -> f64 {
    let mut miss = 1.0;
    for w in locs.windows(2) {
        miss *= 1.0 - pair_pass_probability(space, w[0], w[1], q);
        if miss == 0.0 {
            break;
        }
    }
    1.0 - miss
}

/// Evaluates Eq. 1 over an already-built valid path set.
///
/// `full_mass` is the `Π_i Σ_e prob(e)` denominator used by
/// [`Normalization::FullProduct`].
pub fn presence_from_paths(
    space: &IndoorSpace,
    paths: &PathSet,
    q: SLocId,
    normalization: Normalization,
    full_mass: f64,
) -> f64 {
    let mut weighted = 0.0;
    let mut valid_mass = 0.0;
    for &p in paths.paths() {
        valid_mass += p.prob;
        let pass = paths.pass_probability(space, p, q);
        if pass > 0.0 {
            weighted += pass * p.prob;
        }
    }
    let denom = match normalization {
        Normalization::FullProduct => full_mass,
        Normalization::ValidPaths => valid_mass,
    };
    if denom <= 0.0 {
        0.0
    } else {
        weighted / denom
    }
}

/// The object presence `Φ_{ts,te}(q, o)` (Eq. 1) of one positioning
/// sequence, applying (per `cfg`) the data reduction and the selected
/// engine.
pub fn object_presence(
    space: &IndoorSpace,
    sets: &[SampleSet],
    q: SLocId,
    cfg: &FlowConfig,
) -> Result<f64, FlowError> {
    if cfg.use_reduction {
        let reduced = scan_sequence(space, sets.iter(), true)?.sets;
        presence_prepared(space, &reduced, q, cfg)
    } else {
        presence_prepared(space, sets, q, cfg)
    }
}

/// [`object_presence`] on a sequence that has already been reduced (or is
/// deliberately raw) — the building block the query algorithms use after
/// running `ReduceData` themselves.
pub fn presence_prepared<S: std::borrow::Borrow<SampleSet>>(
    space: &IndoorSpace,
    sets: &[S],
    q: SLocId,
    cfg: &FlowConfig,
) -> Result<f64, FlowError> {
    presence_prepared_tracked(space, sets, q, cfg).map(|(phi, _)| phi)
}

/// [`presence_prepared`] that also reports whether the hybrid engine had
/// to fall back to the DP for this object.
pub fn presence_prepared_tracked<S: std::borrow::Borrow<SampleSet>>(
    space: &IndoorSpace,
    sets: &[S],
    q: SLocId,
    cfg: &FlowConfig,
) -> Result<(f64, bool), FlowError> {
    match cfg.engine {
        PresenceEngine::PathEnumeration => {
            let paths = build_paths(space.matrix(), sets, cfg.path_budget)?;
            Ok((
                presence_from_paths(space, &paths, q, cfg.normalization, full_product_mass(sets)),
                false,
            ))
        }
        PresenceEngine::TransitionDp => Ok((
            crate::dp::presence_dp(space, sets, q, cfg.normalization),
            false,
        )),
        PresenceEngine::Hybrid => match build_paths(space.matrix(), sets, cfg.path_budget) {
            Ok(paths) => Ok((
                presence_from_paths(space, &paths, q, cfg.normalization, full_product_mass(sets)),
                false,
            )),
            Err(FlowError::PathBudgetExceeded { .. }) => Ok((
                crate::dp::presence_dp(space, sets, q, cfg.normalization),
                true,
            )),
            Err(e) => Err(e),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indoor_iupt::fixtures::{paper_table2, O1, O2, O3};
    use indoor_iupt::{ObjectId, TimeInterval, Timestamp};
    use indoor_model::fixtures::{paper_figure1, Figure1};

    fn sets_of(fig: &Figure1, oid: ObjectId) -> Vec<SampleSet> {
        let _ = fig;
        let mut iupt = paper_table2();
        let iv = TimeInterval::new(Timestamp::from_secs(1), Timestamp::from_secs(8));
        iupt.sequence_of(oid, iv)
            .records
            .iter()
            .map(|r| r.samples.clone())
            .collect()
    }

    /// Worked-example configuration: raw sequences, full-product
    /// normalization (the semantics Examples 2–4 use).
    fn raw_cfg() -> FlowConfig {
        FlowConfig {
            use_reduction: false,
            ..FlowConfig::default()
        }
        .with_full_product_normalization()
    }

    /// Example 2 pair probabilities: pr_{p2,p2⊃r6} = 1/2, pr_{p2,p3⊃r4} = 1,
    /// pr_{p2,p3⊃r6} = 0.
    #[test]
    fn example2_pair_probabilities() {
        let fig = paper_figure1();
        let (p2, p3) = (fig.p[1], fig.p[2]);
        let (r4, r6) = (fig.r[3], fig.r[5]);
        assert_eq!(pair_pass_probability(&fig.space, p2, p2, r6), 0.5);
        assert_eq!(pair_pass_probability(&fig.space, p2, p2, r4), 0.5);
        assert_eq!(pair_pass_probability(&fig.space, p2, p3, r4), 1.0);
        assert_eq!(pair_pass_probability(&fig.space, p2, p3, r6), 0.0);
        // Disconnected pair.
        assert_eq!(
            pair_pass_probability(&fig.space, fig.p[2], fig.p[3], r6),
            0.0
        );
    }

    /// The multi-query pair kernel is bit-identical to the single-query
    /// one over every P-location pair and query subset shape.
    #[test]
    fn pair_pass_probabilities_bit_identical_to_single() {
        let fig = paper_figure1();
        let qsets: Vec<Vec<_>> = vec![
            fig.r.to_vec(),
            vec![fig.r[5]],
            vec![fig.r[0], fig.r[3], fig.r[5]],
            vec![],
        ];
        let mut out = Vec::new();
        for a in (0..9).map(indoor_model::PLocId) {
            for b in (0..9).map(indoor_model::PLocId) {
                for qs in &qsets {
                    out.clear();
                    out.resize(qs.len(), f64::NAN);
                    pair_pass_probabilities(&fig.space, a, b, qs, &mut out);
                    for (&q, &got) in qs.iter().zip(&out) {
                        let want = pair_pass_probability(&fig.space, a, b, q);
                        assert_eq!(got.to_bits(), want.to_bits(), "{a:?} {b:?} {q:?}");
                    }
                }
            }
        }
    }

    /// Example 2: pr_{φ1 ⊃ r6} = 1 − (1 − 1/2)(1 − 0) = 0.5 for
    /// φ1 = (p2, p2, p3).
    #[test]
    fn example2_path_pass_probability() {
        let fig = paper_figure1();
        let phi1 = [fig.p[1], fig.p[1], fig.p[2]];
        assert_eq!(path_pass_probability(&fig.space, &phi1, fig.r[5]), 0.5);
        let phi4 = [fig.p[2], fig.p[2], fig.p[2]];
        assert_eq!(path_pass_probability(&fig.space, &phi4, fig.r[5]), 0.0);
    }

    /// Example 2: Φ(r6, o3) = 0.12 and Φ(r1, o3) = 0 on the raw sequence.
    #[test]
    fn example2_o3_presence() {
        let fig = paper_figure1();
        let sets = sets_of(&fig, O3);
        let phi_r6 = object_presence(&fig.space, &sets, fig.r[5], &raw_cfg()).unwrap();
        assert!((phi_r6 - 0.12).abs() < 1e-12, "Φ(r6,o3) = {phi_r6}");
        let phi_r1 = object_presence(&fig.space, &sets, fig.r[0], &raw_cfg()).unwrap();
        assert_eq!(phi_r1, 0.0);
    }

    /// Example 3: Φ(r1, o1) = 0.5, Φ(r6, o1) = 1.
    #[test]
    fn example3_o1_presence() {
        let fig = paper_figure1();
        let sets = sets_of(&fig, O1);
        let phi_r1 = object_presence(&fig.space, &sets, fig.r[0], &raw_cfg()).unwrap();
        assert!((phi_r1 - 0.5).abs() < 1e-12);
        let phi_r6 = object_presence(&fig.space, &sets, fig.r[5], &raw_cfg()).unwrap();
        assert!((phi_r6 - 1.0).abs() < 1e-12);
    }

    /// Example 3: Φ(r1, o2) = 0 and Φ(r6, o2) = 0.85 under the
    /// full-product normalization the worked example uses.
    #[test]
    fn example3_o2_presence_full_product() {
        let fig = paper_figure1();
        let sets = sets_of(&fig, O2);
        let phi_r1 = object_presence(&fig.space, &sets, fig.r[0], &raw_cfg()).unwrap();
        assert_eq!(phi_r1, 0.0);
        let phi_r6 = object_presence(&fig.space, &sets, fig.r[5], &raw_cfg()).unwrap();
        assert!((phi_r6 - 0.85).abs() < 1e-9, "Φ(r6,o2) = {phi_r6}");
    }

    /// Under Algorithm 2's valid-path normalization the same presence is 1
    /// (every valid path of o2 passes r6 with probability 1) — the paper's
    /// internal inconsistency, pinned here as a regression test.
    #[test]
    fn o2_presence_valid_paths_normalization() {
        let fig = paper_figure1();
        let sets = sets_of(&fig, O2);
        let cfg = raw_cfg().with_valid_paths_normalization();
        let phi_r6 = object_presence(&fig.space, &sets, fig.r[5], &cfg).unwrap();
        assert!((phi_r6 - 1.0).abs() < 1e-9, "Φ(r6,o2) = {phi_r6}");
    }

    /// With data reduction, o2's presence in r6 stays high but is computed
    /// on the 3-set merged sequence (the reduction is approximate; the
    /// paper's Table 4 shows slightly different effectiveness with/without
    /// it).
    #[test]
    fn o2_presence_with_reduction() {
        let fig = paper_figure1();
        let sets = sets_of(&fig, O2);
        let cfg = FlowConfig::default().with_full_product_normalization();
        let phi = object_presence(&fig.space, &sets, fig.r[5], &cfg).unwrap();
        assert!((phi - 0.85).abs() < 1e-9, "Φ = {phi}");
    }

    /// Presence is always within [0, 1].
    #[test]
    fn presence_bounded() {
        let fig = paper_figure1();
        for oid in [O1, O2, O3] {
            let sets = sets_of(&fig, oid);
            for q in fig.r {
                for cfg in [raw_cfg(), FlowConfig::default()] {
                    let phi = object_presence(&fig.space, &sets, q, &cfg).unwrap();
                    assert!((0.0..=1.0 + 1e-12).contains(&phi), "Φ = {phi}");
                }
            }
        }
    }

    /// A single-report sequence yields zero presence everywhere (Eq. 2
    /// over an empty pair set).
    #[test]
    fn single_report_zero_presence() {
        let fig = paper_figure1();
        let sets = vec![SampleSet::certain(fig.p[5])];
        for q in fig.r {
            let phi = object_presence(&fig.space, &sets, q, &raw_cfg()).unwrap();
            assert_eq!(phi, 0.0);
        }
    }
}
