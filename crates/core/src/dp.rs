//! Transition-DP presence engine — our exact optimization over the paper's
//! path enumeration (see DESIGN.md §2.3).
//!
//! Eq. 2 factorizes over consecutive pairs:
//! `pr_{φ⊃q} = 1 − Π_j (1 − a_j)` with `a_j` depending only on
//! `(loc_j, loc_{j+1})`. Hence
//!
//! ```text
//! Σ_φ pr(φ)·pr_{φ⊃q} = Σ_φ pr(φ) − Σ_φ pr(φ)·Π_j (1 − a_j)
//! ```
//!
//! and both sums are computable by a forward dynamic program over
//! (step, last P-location): `S` accumulates the valid-path mass, `M` the
//! miss-weighted mass. Complexity is `O(n · m²)` per object/query (`m` =
//! samples per set, ≤ mss) instead of `O(Π |πl(Xi)|)`, with identical
//! results — property-tested against the enumeration engine.

use indoor_iupt::SampleSet;
use indoor_model::{IndoorSpace, SLocId};

use crate::config::Normalization;
use crate::paths::full_product_mass;
use crate::presence::{pair_pass_probabilities, pair_pass_probability};

/// Object presence `Φ(q, o)` (Eq. 1) via the transition DP. Generic
/// over owned, borrowed, or `Cow` sample sets.
pub fn presence_dp<S: std::borrow::Borrow<SampleSet>>(
    space: &IndoorSpace,
    sets: &[S],
    q: SLocId,
    normalization: Normalization,
) -> f64 {
    let Some(first) = sets.first() else {
        return 0.0;
    };
    let first = first.borrow();
    let matrix = space.matrix();

    // Per-step state, indexed like the step's sample list.
    let mut locs: Vec<indoor_model::PLocId> = first.plocs().collect();
    let mut s_mass: Vec<f64> = first.samples().iter().map(|e| e.prob).collect();
    let mut m_mass = s_mass.clone();

    for set in &sets[1..] {
        let next_samples = set.borrow().samples();
        let mut next_locs = Vec::with_capacity(next_samples.len());
        let mut next_s = vec![0.0; next_samples.len()];
        let mut next_m = vec![0.0; next_samples.len()];
        for (j, e) in next_samples.iter().enumerate() {
            next_locs.push(e.loc);
            let mut s_in = 0.0;
            let mut m_in = 0.0;
            for (i, &prev) in locs.iter().enumerate() {
                if s_mass[i] == 0.0 && m_mass[i] == 0.0 {
                    continue;
                }
                if !matrix.connected(prev, e.loc) {
                    continue;
                }
                s_in += s_mass[i];
                let a = pair_pass_probability(space, prev, e.loc, q);
                m_in += m_mass[i] * (1.0 - a);
            }
            next_s[j] = s_in * e.prob;
            next_m[j] = m_in * e.prob;
        }
        locs = next_locs;
        s_mass = next_s;
        m_mass = next_m;
        if s_mass.iter().all(|&v| v == 0.0) {
            // No valid continuation: presence is 0 under both
            // normalizations (no valid paths exist).
            return 0.0;
        }
    }

    let valid_mass: f64 = s_mass.iter().sum();
    let miss_mass: f64 = m_mass.iter().sum();
    let weighted = (valid_mass - miss_mass).max(0.0);
    let denom = match normalization {
        Normalization::FullProduct => full_product_mass(sets),
        Normalization::ValidPaths => valid_mass,
    };
    if denom <= 0.0 {
        0.0
    } else {
        weighted / denom
    }
}

/// [`presence_dp`] for **many query locations at once** — the flat-pass
/// (struct-of-arrays) presence kernel behind the memoized contribution
/// path ([`crate::memo::FlowMemo`]) and the dense
/// [`crate::object_flow_contributions`] DP scoring.
///
/// Two structural facts make one shared forward pass serve every query:
///
/// * the **valid-path mass recursion is query-independent** — it is
///   gated only by matrix connectivity — so one shared `s` vector
///   replaces `|qs|` identical ones;
/// * only the **miss-weighted mass is per-query**, kept here as a
///   q-major flat matrix (`m[k·n + i]`) updated by chunked slice passes,
///   with **one** `MIL[prev, loc]` cell scan per connected transition
///   ([`pair_pass_probabilities`]) instead of `|qs|` scans.
///
/// # Bit-identity
///
/// The result is guaranteed (and property-tested below) to satisfy
/// `presence_dp_multi(..)[k].to_bits() ==
/// presence_dp(.., qs[k], ..).to_bits()` for every `k`:
///
/// * per-query accumulation order is unchanged (ascending predecessor
///   index `i`, then ascending sample index `j`, then ascending step);
/// * the single-query kernel's `s[i] == 0 && m[i] == 0` skip generalizes
///   to its shared form — a predecessor is skipped when its valid mass
///   AND its miss mass under **every** query are zero, and the MIL cell
///   scan is skipped when only the miss masses are zero — which only
///   ever omits `+0.0` terms: every mass is a sum/product of
///   non-negative finite values, so no `-0.0` or `NaN` can make
///   `x + 0.0 ≠ x` bitwise;
/// * the shared early-exit (`s` all zero) fires exactly when every
///   single-query run would return `0.0`;
/// * the [`Normalization::FullProduct`] denominator is computed once and
///   shared — it is a pure product over the sets, identical across
///   queries.
pub fn presence_dp_multi<S: std::borrow::Borrow<SampleSet>>(
    space: &IndoorSpace,
    sets: &[S],
    qs: &[SLocId],
    normalization: Normalization,
) -> Vec<f64> {
    let nq = qs.len();
    if nq == 0 {
        return Vec::new();
    }
    let Some(first) = sets.first() else {
        return vec![0.0; nq];
    };
    let first = first.borrow();
    let matrix = space.matrix();

    let mut locs: Vec<indoor_model::PLocId> = first.plocs().collect();
    // Shared valid-path mass, indexed like the step's sample list.
    let mut s_mass: Vec<f64> = first.samples().iter().map(|e| e.prob).collect();
    // Per-query miss-weighted mass, q-major: `m_mass[k * n + i]`.
    let mut m_mass: Vec<f64> = Vec::with_capacity(nq * s_mass.len());
    for _ in 0..nq {
        m_mass.extend_from_slice(&s_mass);
    }
    let mut pass = vec![0.0; nq];

    let mut m_alive: Vec<bool> = Vec::new();
    for set in &sets[1..] {
        let next_samples = set.borrow().samples();
        let n = locs.len();
        let m = next_samples.len();
        // Per-predecessor liveness, hoisted out of the j loop: a dead
        // predecessor (zero valid mass, zero miss mass under every
        // query) contributes only `+0.0` terms, and one with live valid
        // mass but all-zero miss masses needs no MIL cell scan — both
        // skips are bit-safe (see the doc comment) and mirror the
        // single-query kernel's `s[i] == 0 && m[i] == 0` skip.
        m_alive.clear();
        m_alive.extend((0..n).map(|i| (0..nq).any(|k| m_mass[k * n + i] != 0.0)));
        let mut next_locs = Vec::with_capacity(m);
        let mut next_s = vec![0.0; m];
        let mut next_m = vec![0.0; nq * m];
        for (j, e) in next_samples.iter().enumerate() {
            next_locs.push(e.loc);
            let mut s_in = 0.0;
            for (i, &prev) in locs.iter().enumerate() {
                // anlz:allow(panic-in-hot-path): i < n == locs.len() by construction
                let miss_alive = m_alive[i];
                if s_mass[i] == 0.0 && !miss_alive {
                    continue;
                }
                if !matrix.connected(prev, e.loc) {
                    continue;
                }
                s_in += s_mass[i];
                if miss_alive {
                    pair_pass_probabilities(space, prev, e.loc, qs, &mut pass);
                    // Chunked flat pass: for each query row, fold this
                    // predecessor's miss mass into sample j's slot. Fixed
                    // i-ascending accumulation order per (k, j) slot.
                    for (k, &a) in pass.iter().enumerate() {
                        next_m[k * m + j] += m_mass[k * n + i] * (1.0 - a);
                    }
                }
            }
            next_s[j] = s_in * e.prob;
            for k in 0..nq {
                next_m[k * m + j] *= e.prob;
            }
        }
        locs = next_locs;
        s_mass = next_s;
        m_mass = next_m;
        if s_mass.iter().all(|&v| v == 0.0) {
            // No valid continuation: presence is 0 for every query under
            // both normalizations (no valid paths exist).
            return vec![0.0; nq];
        }
    }

    let n = locs.len();
    // Fixed ascending-index summation — same order as the single-query
    // kernel's final sums.
    let valid_mass: f64 = s_mass.iter().sum();
    let full_mass = match normalization {
        Normalization::FullProduct => full_product_mass(sets),
        Normalization::ValidPaths => 0.0, // unused
    };
    (0..nq)
        .map(|k| {
            let miss_mass: f64 = m_mass[k * n..(k + 1) * n].iter().sum();
            let weighted = (valid_mass - miss_mass).max(0.0);
            let denom = match normalization {
                Normalization::FullProduct => full_mass,
                Normalization::ValidPaths => valid_mass,
            };
            if denom <= 0.0 {
                0.0
            } else {
                weighted / denom
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FlowConfig, PresenceEngine};
    use crate::presence::object_presence;
    use indoor_iupt::fixtures::{paper_table2, O1, O2, O3};
    use indoor_iupt::{ObjectId, Sample, TimeInterval, Timestamp};
    use indoor_model::fixtures::paper_figure1;
    use indoor_model::PLocId;
    use proptest::prelude::*;

    fn sets_of(oid: ObjectId) -> Vec<SampleSet> {
        let mut iupt = paper_table2();
        let iv = TimeInterval::new(Timestamp::from_secs(1), Timestamp::from_secs(8));
        iupt.sequence_of(oid, iv)
            .records
            .iter()
            .map(|r| r.samples.clone())
            .collect()
    }

    #[test]
    fn matches_worked_examples() {
        let fig = paper_figure1();
        let cases = [
            (O3, fig.r[5], 0.12),
            (O3, fig.r[0], 0.0),
            (O1, fig.r[0], 0.5),
            (O1, fig.r[5], 1.0),
            (O2, fig.r[5], 0.85),
            (O2, fig.r[0], 0.0),
        ];
        for (oid, q, want) in cases {
            let phi = presence_dp(&fig.space, &sets_of(oid), q, Normalization::FullProduct);
            assert!((phi - want).abs() < 1e-9, "{oid}, {q}: {phi} vs {want}");
        }
    }

    #[test]
    fn empty_sequence_is_zero() {
        let fig = paper_figure1();
        assert_eq!(
            presence_dp::<SampleSet>(&fig.space, &[], fig.r[0], Normalization::FullProduct),
            0.0
        );
    }

    #[test]
    fn agrees_with_enumeration_on_paper_objects() {
        let fig = paper_figure1();
        for oid in [O1, O2, O3] {
            let sets = sets_of(oid);
            for q in fig.r {
                for norm in [Normalization::FullProduct, Normalization::ValidPaths] {
                    let enum_cfg = FlowConfig {
                        use_reduction: false,
                        normalization: norm,
                        engine: PresenceEngine::PathEnumeration,
                        ..FlowConfig::default()
                    };
                    let dp = presence_dp(&fig.space, &sets, q, norm);
                    let en = object_presence(&fig.space, &sets, q, &enum_cfg).unwrap();
                    assert!(
                        (dp - en).abs() < 1e-9,
                        "{oid} {q} {norm:?}: dp {dp} vs enum {en}"
                    );
                }
            }
        }
    }

    /// Random sample-set sequences over the Figure 1 P-locations: DP and
    /// enumeration must agree everywhere.
    #[test]
    fn property_dp_equals_enumeration() {
        let fig = paper_figure1();
        let space = &fig.space;
        let strategy =
            proptest::collection::vec(proptest::collection::vec((0u32..9, 1u32..10), 1..4), 1..6);
        let mut runner = proptest::test_runner::TestRunner::new(ProptestConfig {
            cases: 60,
            ..ProptestConfig::default()
        });
        runner
            .run(&strategy, |raw| {
                let mut sets = Vec::new();
                for raw_set in raw {
                    // Deduplicate locations, normalize weights.
                    let mut weights: Vec<(PLocId, f64)> = Vec::new();
                    for (loc, w) in raw_set {
                        let loc = PLocId(loc);
                        match weights.iter_mut().find(|(l, _)| *l == loc) {
                            Some((_, acc)) => *acc += w as f64,
                            None => weights.push((loc, w as f64)),
                        }
                    }
                    sets.push(SampleSet::normalized(weights).unwrap());
                }
                for q in fig.r {
                    for norm in [Normalization::FullProduct, Normalization::ValidPaths] {
                        let dp = presence_dp(space, &sets, q, norm);
                        let cfg = FlowConfig {
                            use_reduction: false,
                            normalization: norm,
                            ..FlowConfig::default()
                        };
                        let en = object_presence(space, &sets, q, &cfg).unwrap();
                        prop_assert!(
                            (dp - en).abs() < 1e-9,
                            "dp {} vs enum {} for {:?} {:?}",
                            dp,
                            en,
                            q,
                            norm
                        );
                    }
                }
                Ok(())
            })
            .unwrap();
    }

    /// The flat-pass multi-query DP is **bit-identical** to the
    /// single-query DP on the paper objects, for every query subset
    /// shape and both normalizations.
    #[test]
    fn multi_bit_identical_to_single_on_paper_objects() {
        let fig = paper_figure1();
        let qsets: Vec<Vec<_>> = vec![
            fig.r.to_vec(),
            vec![fig.r[5]],
            vec![fig.r[0], fig.r[3], fig.r[5]],
            vec![],
        ];
        for oid in [O1, O2, O3] {
            let sets = sets_of(oid);
            for qs in &qsets {
                for norm in [Normalization::FullProduct, Normalization::ValidPaths] {
                    let multi = presence_dp_multi(&fig.space, &sets, qs, norm);
                    assert_eq!(multi.len(), qs.len());
                    for (&q, &got) in qs.iter().zip(&multi) {
                        let want = presence_dp(&fig.space, &sets, q, norm);
                        assert_eq!(got.to_bits(), want.to_bits(), "{oid} {q} {norm:?}");
                    }
                }
            }
        }
        // Empty sequence.
        let multi =
            presence_dp_multi::<SampleSet>(&fig.space, &[], &fig.r, Normalization::ValidPaths);
        assert_eq!(multi, vec![0.0; fig.r.len()]);
    }

    /// Random sequences: multi-query DP bits equal single-query DP bits
    /// everywhere (the guarantee the kernel memo's `to_bits` gates lean
    /// on).
    #[test]
    fn property_multi_equals_single_bitwise() {
        let fig = paper_figure1();
        let space = &fig.space;
        let strategy =
            proptest::collection::vec(proptest::collection::vec((0u32..9, 1u32..10), 1..4), 1..7);
        let mut runner = proptest::test_runner::TestRunner::new(ProptestConfig {
            cases: 80,
            ..ProptestConfig::default()
        });
        runner
            .run(&strategy, |raw| {
                let mut sets = Vec::new();
                for raw_set in raw {
                    let mut weights: Vec<(PLocId, f64)> = Vec::new();
                    for (loc, w) in raw_set {
                        let loc = PLocId(loc);
                        match weights.iter_mut().find(|(l, _)| *l == loc) {
                            Some((_, acc)) => *acc += w as f64,
                            None => weights.push((loc, w as f64)),
                        }
                    }
                    sets.push(SampleSet::normalized(weights).unwrap());
                }
                for norm in [Normalization::FullProduct, Normalization::ValidPaths] {
                    let multi = presence_dp_multi(space, &sets, &fig.r, norm);
                    for (&q, &got) in fig.r.iter().zip(&multi) {
                        let want = presence_dp(space, &sets, q, norm);
                        prop_assert_eq!(
                            got.to_bits(),
                            want.to_bits(),
                            "{:?} {:?}: {} vs {}",
                            q,
                            norm,
                            got,
                            want
                        );
                    }
                }
                Ok(())
            })
            .unwrap();
    }

    /// The DP stays numerically stable on long sequences where per-path
    /// products would underflow.
    #[test]
    fn long_sequence_stability() {
        let fig = paper_figure1();
        // 500 alternating reports between p6 and p8's hallway class and p5.
        let a =
            SampleSet::new(vec![Sample::new(fig.p[5], 0.5), Sample::new(fig.p[4], 0.5)]).unwrap();
        let sets: Vec<SampleSet> = (0..500).map(|_| a.clone()).collect();
        let phi = presence_dp(&fig.space, &sets, fig.r[5], Normalization::FullProduct);
        assert!(phi > 0.99, "Φ = {phi}");
        assert!(phi <= 1.0 + 1e-9);
    }
}
