//! Transition-DP presence engine — our exact optimization over the paper's
//! path enumeration (see DESIGN.md §2.3).
//!
//! Eq. 2 factorizes over consecutive pairs:
//! `pr_{φ⊃q} = 1 − Π_j (1 − a_j)` with `a_j` depending only on
//! `(loc_j, loc_{j+1})`. Hence
//!
//! ```text
//! Σ_φ pr(φ)·pr_{φ⊃q} = Σ_φ pr(φ) − Σ_φ pr(φ)·Π_j (1 − a_j)
//! ```
//!
//! and both sums are computable by a forward dynamic program over
//! (step, last P-location): `S` accumulates the valid-path mass, `M` the
//! miss-weighted mass. Complexity is `O(n · m²)` per object/query (`m` =
//! samples per set, ≤ mss) instead of `O(Π |πl(Xi)|)`, with identical
//! results — property-tested against the enumeration engine.

use indoor_iupt::SampleSet;
use indoor_model::{IndoorSpace, SLocId};

use crate::config::Normalization;
use crate::paths::full_product_mass;
use crate::presence::pair_pass_probability;

/// Object presence `Φ(q, o)` (Eq. 1) via the transition DP. Generic
/// over owned, borrowed, or `Cow` sample sets.
pub fn presence_dp<S: std::borrow::Borrow<SampleSet>>(
    space: &IndoorSpace,
    sets: &[S],
    q: SLocId,
    normalization: Normalization,
) -> f64 {
    let Some(first) = sets.first() else {
        return 0.0;
    };
    let first = first.borrow();
    let matrix = space.matrix();

    // Per-step state, indexed like the step's sample list.
    let mut locs: Vec<indoor_model::PLocId> = first.plocs().collect();
    let mut s_mass: Vec<f64> = first.samples().iter().map(|e| e.prob).collect();
    let mut m_mass = s_mass.clone();

    for set in &sets[1..] {
        let next_samples = set.borrow().samples();
        let mut next_locs = Vec::with_capacity(next_samples.len());
        let mut next_s = vec![0.0; next_samples.len()];
        let mut next_m = vec![0.0; next_samples.len()];
        for (j, e) in next_samples.iter().enumerate() {
            next_locs.push(e.loc);
            let mut s_in = 0.0;
            let mut m_in = 0.0;
            for (i, &prev) in locs.iter().enumerate() {
                if s_mass[i] == 0.0 && m_mass[i] == 0.0 {
                    continue;
                }
                if !matrix.connected(prev, e.loc) {
                    continue;
                }
                s_in += s_mass[i];
                let a = pair_pass_probability(space, prev, e.loc, q);
                m_in += m_mass[i] * (1.0 - a);
            }
            next_s[j] = s_in * e.prob;
            next_m[j] = m_in * e.prob;
        }
        locs = next_locs;
        s_mass = next_s;
        m_mass = next_m;
        if s_mass.iter().all(|&v| v == 0.0) {
            // No valid continuation: presence is 0 under both
            // normalizations (no valid paths exist).
            return 0.0;
        }
    }

    let valid_mass: f64 = s_mass.iter().sum();
    let miss_mass: f64 = m_mass.iter().sum();
    let weighted = (valid_mass - miss_mass).max(0.0);
    let denom = match normalization {
        Normalization::FullProduct => full_product_mass(sets),
        Normalization::ValidPaths => valid_mass,
    };
    if denom <= 0.0 {
        0.0
    } else {
        weighted / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FlowConfig, PresenceEngine};
    use crate::presence::object_presence;
    use indoor_iupt::fixtures::{paper_table2, O1, O2, O3};
    use indoor_iupt::{ObjectId, Sample, TimeInterval, Timestamp};
    use indoor_model::fixtures::paper_figure1;
    use indoor_model::PLocId;
    use proptest::prelude::*;

    fn sets_of(oid: ObjectId) -> Vec<SampleSet> {
        let mut iupt = paper_table2();
        let iv = TimeInterval::new(Timestamp::from_secs(1), Timestamp::from_secs(8));
        iupt.sequence_of(oid, iv)
            .records
            .iter()
            .map(|r| r.samples.clone())
            .collect()
    }

    #[test]
    fn matches_worked_examples() {
        let fig = paper_figure1();
        let cases = [
            (O3, fig.r[5], 0.12),
            (O3, fig.r[0], 0.0),
            (O1, fig.r[0], 0.5),
            (O1, fig.r[5], 1.0),
            (O2, fig.r[5], 0.85),
            (O2, fig.r[0], 0.0),
        ];
        for (oid, q, want) in cases {
            let phi = presence_dp(&fig.space, &sets_of(oid), q, Normalization::FullProduct);
            assert!((phi - want).abs() < 1e-9, "{oid}, {q}: {phi} vs {want}");
        }
    }

    #[test]
    fn empty_sequence_is_zero() {
        let fig = paper_figure1();
        assert_eq!(
            presence_dp::<SampleSet>(&fig.space, &[], fig.r[0], Normalization::FullProduct),
            0.0
        );
    }

    #[test]
    fn agrees_with_enumeration_on_paper_objects() {
        let fig = paper_figure1();
        for oid in [O1, O2, O3] {
            let sets = sets_of(oid);
            for q in fig.r {
                for norm in [Normalization::FullProduct, Normalization::ValidPaths] {
                    let enum_cfg = FlowConfig {
                        use_reduction: false,
                        normalization: norm,
                        engine: PresenceEngine::PathEnumeration,
                        ..FlowConfig::default()
                    };
                    let dp = presence_dp(&fig.space, &sets, q, norm);
                    let en = object_presence(&fig.space, &sets, q, &enum_cfg).unwrap();
                    assert!(
                        (dp - en).abs() < 1e-9,
                        "{oid} {q} {norm:?}: dp {dp} vs enum {en}"
                    );
                }
            }
        }
    }

    /// Random sample-set sequences over the Figure 1 P-locations: DP and
    /// enumeration must agree everywhere.
    #[test]
    fn property_dp_equals_enumeration() {
        let fig = paper_figure1();
        let space = &fig.space;
        let strategy =
            proptest::collection::vec(proptest::collection::vec((0u32..9, 1u32..10), 1..4), 1..6);
        let mut runner = proptest::test_runner::TestRunner::new(ProptestConfig {
            cases: 60,
            ..ProptestConfig::default()
        });
        runner
            .run(&strategy, |raw| {
                let mut sets = Vec::new();
                for raw_set in raw {
                    // Deduplicate locations, normalize weights.
                    let mut weights: Vec<(PLocId, f64)> = Vec::new();
                    for (loc, w) in raw_set {
                        let loc = PLocId(loc);
                        match weights.iter_mut().find(|(l, _)| *l == loc) {
                            Some((_, acc)) => *acc += w as f64,
                            None => weights.push((loc, w as f64)),
                        }
                    }
                    sets.push(SampleSet::normalized(weights).unwrap());
                }
                for q in fig.r {
                    for norm in [Normalization::FullProduct, Normalization::ValidPaths] {
                        let dp = presence_dp(space, &sets, q, norm);
                        let cfg = FlowConfig {
                            use_reduction: false,
                            normalization: norm,
                            ..FlowConfig::default()
                        };
                        let en = object_presence(space, &sets, q, &cfg).unwrap();
                        prop_assert!(
                            (dp - en).abs() < 1e-9,
                            "dp {} vs enum {} for {:?} {:?}",
                            dp,
                            en,
                            q,
                            norm
                        );
                    }
                }
                Ok(())
            })
            .unwrap();
    }

    /// The DP stays numerically stable on long sequences where per-path
    /// products would underflow.
    #[test]
    fn long_sequence_stability() {
        let fig = paper_figure1();
        // 500 alternating reports between p6 and p8's hallway class and p5.
        let a =
            SampleSet::new(vec![Sample::new(fig.p[5], 0.5), Sample::new(fig.p[4], 0.5)]).unwrap();
        let sets: Vec<SampleSet> = (0..500).map(|_| a.clone()).collect();
        let phi = presence_dp(&fig.space, &sets, fig.r[5], Normalization::FullProduct);
        assert!(phi > 0.99, "Φ = {phi}");
        assert!(phi <= 1.0 + 1e-9);
    }
}
