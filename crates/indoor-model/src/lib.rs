//! Indoor space model for the `popflow` workspace — the topology substrate
//! of Li et al., "Finding Most Popular Indoor Semantic Locations Using
//! Uncertain Mobility Data" (TKDE 2019), §2.1 and §3.1.
//!
//! The model is layered:
//!
//! 1. [`Building`] — partitions (rooms / hallway segments / staircases)
//!    connected by doors; pure walls-and-doors topology.
//! 2. [`PLocation`] / [`SLocation`] — the two location vocabularies:
//!    discrete positioning reference points (further split into
//!    *partitioning* and *presence* P-locations) and user-defined semantic
//!    regions.
//! 3. Derived structures, computed once per space:
//!    * [`Cell`]s — maximal partition groups separated only by partitioning
//!      P-locations (union-find over unguarded doors);
//!    * [`IslGraph`] — the indoor space location graph `GISL = (C, E, ℓe)`;
//!    * [`LocationMatrix`] — the indoor location matrix `MIL` with
//!      equivalent-P-location classes;
//!    * the `C2S` and `Cell(·)` mappings between cells and S-locations.
//! 4. [`DoorGraph`] — shortest indoor routes through doors, used by the
//!    mobility simulator ("objects move along the shortest indoor path").
//!
//! [`fixtures::paper_figure1`] reconstructs the paper's running example and
//! is reused by tests across the workspace.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod building;
mod cells;
mod door;
mod door_graph;
pub mod fixtures;
mod ids;
mod isl_graph;
mod location_matrix;
mod locations;
mod partition;
mod space;

pub use building::{Building, BuildingBuilder, BuildingError};
pub use cells::{Cell, CellDuo, CellVec};
pub use door::Door;
pub use door_graph::{DoorGraph, Leg, Route, DEFAULT_STAIR_COST};
pub use ids::{CellId, DoorId, EquivClassId, FloorId, PLocId, PartitionId, SLocId};
pub use isl_graph::{IslEdge, IslGraph};
pub use location_matrix::{EquivClass, LocationMatrix};
pub use locations::{PLocKind, PLocation, SLocation};
pub use partition::{Partition, PartitionKind};
pub use space::{IndoorSpace, SpaceBuilder, SpaceError, SpaceStats};
