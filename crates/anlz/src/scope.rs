//! A lightweight scope tracker over the token stream.
//!
//! Rules need to know *where* a token sits: which module path, which
//! `fn`, and — critically — whether the enclosing item is test-only
//! (`#[cfg(test)]`, `#[test]`, or a `mod tests`), because every rule in
//! this linter exempts test code. This is not a parser: it matches
//! braces and watches for the item keywords (`mod`, `fn`, `impl`,
//! `trait`) and outer attributes that precede a `{`. That is enough for
//! well-formed rustfmt'd source, which is all this linter sweeps.

use crate::lexer::{Token, TokenKind};

/// What kind of item opened a brace scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScopeKind {
    /// `mod name { … }`
    Module,
    /// `fn name(…) { … }`
    Fn,
    /// `impl … { … }` or `trait … { … }`
    Impl,
    /// Any other `{ … }`: blocks, match arms, struct literals, …
    Block,
}

#[derive(Debug, Clone)]
struct Scope {
    kind: ScopeKind,
    /// `mod`/`fn` name, when the item has one.
    name: Option<String>,
    /// True if this scope or any ancestor is test-only.
    is_test: bool,
}

/// Tracks the scope stack as tokens stream by. Feed every token (in
/// order) to [`ScopeTracker::observe`] *before* running rule logic for
/// that token, then query the accessors.
#[derive(Debug)]
pub struct ScopeTracker {
    stack: Vec<Scope>,
    /// Name of the most recent `mod`/`fn` keyword's item, waiting for
    /// its `{` (or discarded at `;` for out-of-line mods / trait fns).
    pending: Option<(ScopeKind, Option<String>)>,
    /// Set when the last ident consumed was `mod` or `fn` and we are
    /// waiting for the item's name.
    awaiting_name: Option<ScopeKind>,
    /// True when an outer attribute seen since the last item boundary
    /// marks the next item as test-only (`#[cfg(test)]` / `#[test]`).
    pending_test_attr: bool,
    /// Attribute parsing state: depth of `[` … `]` after a `#`.
    attr_depth: u32,
    /// Idents observed inside the current attribute.
    attr_idents: Vec<String>,
    /// True while between a `#` and its `[`.
    attr_hash: bool,
}

impl ScopeTracker {
    /// A tracker at file (crate-root) scope.
    pub fn new() -> Self {
        ScopeTracker {
            stack: Vec::new(),
            pending: None,
            awaiting_name: None,
            pending_test_attr: false,
            attr_depth: 0,
            attr_idents: Vec::new(),
            attr_hash: false,
        }
    }

    /// True if the current position is inside test-only code.
    pub fn in_test(&self) -> bool {
        self.stack.last().is_some_and(|s| s.is_test)
    }

    /// Name of the innermost enclosing `fn`, if any.
    pub fn fn_name(&self) -> Option<&str> {
        self.stack
            .iter()
            .rev()
            .find(|s| s.kind == ScopeKind::Fn)
            .and_then(|s| s.name.as_deref())
    }

    /// `::`-joined path of enclosing named modules (in-file only).
    pub fn module_path(&self) -> String {
        let parts: Vec<&str> = self
            .stack
            .iter()
            .filter(|s| s.kind == ScopeKind::Module)
            .filter_map(|s| s.name.as_deref())
            .collect();
        parts.join("::")
    }

    /// Current brace depth (0 = file scope).
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// True while the tracker is inside a `#[…]` attribute. Rules use
    /// this to skip idents like `test` inside attribute bodies.
    pub fn in_attribute(&self) -> bool {
        self.attr_hash || self.attr_depth > 0
    }

    /// Advances the tracker across one token.
    pub fn observe(&mut self, tok: &Token, src: &str) {
        match tok.kind {
            TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment => return,
            _ => {}
        }
        let text = tok.text(src);

        // Attribute state machine: `#` `[` idents… `]`.
        if self.attr_hash {
            self.attr_hash = false;
            if tok.kind == TokenKind::Punct && text == "[" {
                self.attr_depth = 1;
                self.attr_idents.clear();
                return;
            }
            // `#` not followed by `[` (e.g. inside macros): fall through.
        }
        if self.attr_depth > 0 {
            match (tok.kind, text) {
                (TokenKind::Punct, "[") => self.attr_depth += 1,
                (TokenKind::Punct, "]") => {
                    self.attr_depth -= 1;
                    if self.attr_depth == 0 {
                        self.finish_attribute();
                    }
                }
                (TokenKind::Ident, w) => self.attr_idents.push(w.to_string()),
                _ => {}
            }
            return;
        }
        if tok.kind == TokenKind::Punct && text == "#" {
            self.attr_hash = true;
            return;
        }

        // Item-name capture: `mod NAME` / `fn NAME`.
        if let Some(kind) = self.awaiting_name.take() {
            if tok.kind == TokenKind::Ident {
                self.pending = Some((kind, Some(text.to_string())));
                return;
            }
            self.pending = Some((kind, None));
            // Not a name (e.g. `fn(` in a type) — fall through so the
            // token still gets brace handling below.
        }

        match (tok.kind, text) {
            (TokenKind::Ident, "mod") => self.awaiting_name = Some(ScopeKind::Module),
            (TokenKind::Ident, "fn") => self.awaiting_name = Some(ScopeKind::Fn),
            (TokenKind::Ident, "impl" | "trait") => {
                self.pending = Some((ScopeKind::Impl, None));
            }
            (TokenKind::Punct, "{") => {
                let (kind, name) = self.pending.take().unwrap_or((ScopeKind::Block, None));
                let inherited = self.in_test();
                let own = self.pending_test_attr
                    || (kind == ScopeKind::Module && name.as_deref() == Some("tests"));
                self.pending_test_attr = false;
                self.stack.push(Scope {
                    kind,
                    name,
                    is_test: inherited || own,
                });
            }
            (TokenKind::Punct, "}") => {
                self.stack.pop();
            }
            // Out-of-line `mod x;`, trait method signatures, etc.: the
            // pending item never opens a scope. A test attr on it is
            // likewise spent.
            (TokenKind::Punct, ";") if self.pending.take().is_some() => {
                self.pending_test_attr = false;
            }
            _ => {}
        }
    }

    /// Interprets the attribute whose `]` just closed: does it mark the
    /// next item test-only? Loose on purpose — `#[cfg(test)]`,
    /// `#[cfg(all(test, feature = "x"))]`, `#[test]`, `#[tokio::test]`
    /// all qualify.
    fn finish_attribute(&mut self) {
        let has = |w: &str| self.attr_idents.iter().any(|i| i == w);
        if (has("cfg") && has("test")) || self.attr_idents.iter().any(|i| i == "test") {
            self.pending_test_attr = true;
        }
        self.attr_idents.clear();
    }
}

impl Default for ScopeTracker {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    /// Runs the tracker over `src`, sampling state at every ident equal
    /// to `marker`; returns (in_test, fn_name, module_path) per hit.
    fn sample(src: &str, marker: &str) -> Vec<(bool, Option<String>, String)> {
        let mut tracker = ScopeTracker::new();
        let mut out = Vec::new();
        for tok in lex(src) {
            tracker.observe(&tok, src);
            if tok.kind == TokenKind::Ident && tok.text(src) == marker {
                out.push((
                    tracker.in_test(),
                    tracker.fn_name().map(str::to_string),
                    tracker.module_path(),
                ));
            }
        }
        out
    }

    #[test]
    fn tracks_fn_and_module_names() {
        let src = "mod outer { fn compute() { MARK; } } fn top() { MARK; }";
        let hits = sample(src, "MARK");
        assert_eq!(
            hits,
            vec![
                (false, Some("compute".into()), "outer".into()),
                (false, Some("top".into()), String::new()),
            ]
        );
    }

    #[test]
    fn cfg_test_module_is_test() {
        let src = r#"
            fn prod() { MARK; }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { MARK; }
            }
        "#;
        let hits = sample(src, "MARK");
        assert!(!hits[0].0);
        assert!(hits[1].0);
    }

    #[test]
    fn mod_named_tests_is_test_without_attr() {
        let src = "mod tests { fn helper() { MARK; } }";
        assert!(sample(src, "MARK")[0].0);
    }

    #[test]
    fn test_attr_on_fn_only_marks_that_fn() {
        let src = "#[test] fn t() { MARK; } fn prod() { MARK; }";
        let hits = sample(src, "MARK");
        assert!(hits[0].0);
        assert!(!hits[1].0);
    }

    #[test]
    fn out_of_line_mod_does_not_leak() {
        let src = "#[cfg(test)] mod harness; fn prod() { MARK; }";
        assert!(!sample(src, "MARK")[0].0);
    }

    #[test]
    fn nested_blocks_inherit_test() {
        let src = "#[cfg(test)] mod tests { fn t() { if x { { MARK; } } } }";
        assert!(sample(src, "MARK")[0].0);
    }

    #[test]
    fn impl_blocks_tracked() {
        let src = "impl Foo { fn method(&self) { MARK; } }";
        let hits = sample(src, "MARK");
        assert_eq!(hits[0].1.as_deref(), Some("method"));
    }

    #[test]
    fn cfg_not_test_is_not_test() {
        let src = "#[cfg(feature = \"x\")] mod gated { fn f() { MARK; } }";
        assert!(!sample(src, "MARK")[0].0);
    }
}
