//! `popflow-serve` — sharded streaming ingestion and incremental
//! continuous top-k serving for indoor flow queries.
//!
//! The batch algorithms in `popflow-core` answer one Top-k Popular
//! Location Query at a time; the paper's §7 names the *online and
//! continuous* version as the open direction. This crate is that
//! direction taken to a serving shape:
//!
//! ```text
//!            records (time-ordered stream)
//!                       │ hash(oid)
//!        ┌──────────────┼──────────────┐
//!        ▼              ▼              ▼
//!   shard worker 0  shard worker 1 … shard worker N-1   (std::thread + mpsc)
//!   ┌───────────┐   ┌───────────┐
//!   │ IUPT part │   │ IUPT part │   per-object records, own TimeIndex
//!   │ buckets:  │   │ buckets:  │   sealed buckets cache per-object
//!   │ [b₀][b₁]… │   │ [b₀][b₁]… │   window contributions
//!   └─────┬─────┘   └─────┬─────┘
//!         └───────┬───────┘
//!                 ▼  advance(now)
//!        merge by object id → rank_topk → ContinuousUpdate
//! ```
//!
//! * **Ingestion** partitions records by object across worker threads;
//!   each worker owns one IUPT partition (its own 1D R-tree time index).
//! * **The sliding window is bucketed** ([`popflow_core::WindowSpec`]):
//!   a slide evicts expired buckets and seals newly completed ones
//!   instead of recomputing history.
//! * **Evaluation is incremental but exact**: per sealed bucket each
//!   object's contribution is cached; only objects whose records straddle
//!   bucket boundaries are recomputed over the full window, through the
//!   same per-object kernel
//!   ([`popflow_core::object_flow_contributions`]) the batch Nested-Loop
//!   search uses, accumulated in the same object-id order — so every
//!   advance reports *bit-identical* flows to a batch recomputation over
//!   the same window.
//!
//! The recompute-per-slide baseline lives in `popflow-core`
//! ([`popflow_core::RecomputeEngine`]); both implement
//! [`popflow_core::ContinuousEngine`] and are compared head-to-head by
//! the `streaming` experiment and `serve_demo` example in `popflow-eval`.

mod engine;
mod shard;

pub use engine::{ServeConfig, ServeEngine, ServeStats};

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use indoor_iupt::fixtures::paper_table2;
    use indoor_iupt::{Record, Timestamp};
    use indoor_model::fixtures::paper_figure1;
    use indoor_sim::{Scenario, World};
    use popflow_core::{
        ContinuousEngine, FlowConfig, FlowError, QuerySet, RecomputeEngine, WindowSpec,
    };

    use super::*;

    fn paper_engine(spec: WindowSpec, shards: usize) -> (ServeEngine, Arc<IndoorSpaceAlias>) {
        let fig = paper_figure1();
        let space = Arc::new(fig.space.clone());
        let cfg = ServeConfig::new(2, QuerySet::new(fig.r.to_vec()), spec)
            .with_shards(shards)
            .with_flow(FlowConfig::default().with_full_product_normalization());
        (ServeEngine::new(Arc::clone(&space), cfg), space)
    }

    type IndoorSpaceAlias = indoor_model::IndoorSpace;

    #[test]
    fn paper_example_topk_served() {
        let (mut engine, _space) = paper_engine(WindowSpec::new(2_000, 4), 3);
        engine
            .ingest_all(paper_table2().records().to_vec())
            .unwrap();
        // Window at t=8999: buckets 0..=3 = [0, 7999] — the full Table 2.
        let update = engine.advance(Timestamp(8_999)).unwrap();
        let fig = paper_figure1();
        assert_eq!(update.outcome.ranking[0].sloc, fig.r[5]);
        assert!((update.outcome.ranking[0].flow - 1.85).abs() < 1e-9);
        assert!(update.changed);
        assert_eq!(engine.current().unwrap(), update.outcome.topk_slocs());
        let stats = engine.stats();
        assert_eq!(stats.records_ingested, 10);
        assert_eq!(stats.advances, 1);
    }

    #[test]
    fn matches_recompute_engine_on_every_slide() {
        let world = World::generate(Scenario::tiny().with_seed(5));
        let space = Arc::new(world.space.clone());
        let slocs: Vec<_> = world.space.slocs().iter().map(|s| s.id).collect();
        let spec = WindowSpec::new(30_000, 4); // 30 s buckets, 2 min window
        let flow = FlowConfig::default().with_dp_engine();

        let serve_cfg = ServeConfig::new(3, QuerySet::new(slocs.clone()), spec)
            .with_shards(3)
            .with_flow(flow);
        let mut serve = ServeEngine::new(Arc::clone(&space), serve_cfg);
        let mut batch =
            RecomputeEngine::new(Arc::clone(&space), 3, QuerySet::new(slocs), spec, flow);

        let records: Vec<Record> = world.iupt.records().to_vec();
        let mut next = 0usize;
        for slide in 1..=12 {
            let now = Timestamp::from_secs(slide * 45);
            while next < records.len() && records[next].t <= now {
                serve.ingest(records[next].clone()).unwrap();
                batch.ingest(records[next].clone()).unwrap();
                next += 1;
            }
            let a = serve.advance(now).unwrap();
            let b = batch.advance(now).unwrap();
            assert_eq!(a.window, b.window, "slide {slide}");
            assert_eq!(
                a.outcome.topk_slocs(),
                b.outcome.topk_slocs(),
                "slide {slide}"
            );
            // Bit-identical flows, not merely equal rankings.
            for (x, y) in a.outcome.ranking.iter().zip(b.outcome.ranking.iter()) {
                assert_eq!(x.flow.to_bits(), y.flow.to_bits(), "slide {slide}");
            }
            assert_eq!(a.changed, b.changed);
            assert_eq!(a.entered, b.entered);
            assert_eq!(a.left, b.left);
        }
        // The windows genuinely slid and the caches were exercised.
        let stats = serve.stats();
        assert_eq!(stats.advances, 12);
        assert!(stats.cache_hits > 0, "no cached window objects: {stats:?}");
    }

    #[test]
    fn rejects_out_of_order_and_late_records_without_dying() {
        let (mut engine, _space) = paper_engine(WindowSpec::new(1_000, 2), 2);
        let records = paper_table2().records().to_vec();
        engine.ingest(records[5].clone()).unwrap();
        // Out of order.
        let err = engine.ingest(records[0].clone()).unwrap_err();
        assert!(matches!(err, FlowError::TimeRegression { .. }));
        // Advance seals through bucket 4 (frontier t=5000); a record at
        // t=4500 is late even though it is after the last ingest.
        engine.advance(Timestamp(4_999)).unwrap();
        let late = Record {
            t: Timestamp(4_500),
            ..records[5].clone()
        };
        let err = engine.ingest(late).unwrap_err();
        assert!(matches!(err, FlowError::TimeRegression { .. }));
        assert_eq!(engine.stats().records_rejected, 2);
        // The engine still serves.
        engine.ingest(records[9].clone()).unwrap();
        let update = engine.advance(Timestamp(8_999)).unwrap();
        assert_eq!(update.outcome.ranking.len(), 2);
        assert_eq!(engine.stats().records_ingested, 2);
    }

    #[test]
    fn advance_is_monotonic() {
        let (mut engine, _space) = paper_engine(WindowSpec::new(1_000, 1), 1);
        engine.advance(Timestamp(5_000)).unwrap();
        let err = engine.advance(Timestamp(4_000)).unwrap_err();
        assert!(matches!(err, FlowError::TimeRegression { .. }));
        engine.advance(Timestamp(5_000)).unwrap(); // idempotent re-advance ok
    }

    #[test]
    fn shard_count_does_not_change_results() {
        let fig = paper_figure1();
        let records = paper_table2().records().to_vec();
        let mut rankings = Vec::new();
        for shards in [1, 2, 5] {
            let (mut engine, _space) = paper_engine(WindowSpec::new(4_000, 2), shards);
            engine.ingest_all(records.clone()).unwrap();
            let update = engine.advance(Timestamp::from_secs(8)).unwrap();
            rankings.push(
                update
                    .outcome
                    .ranking
                    .iter()
                    .map(|r| (r.sloc, r.flow.to_bits()))
                    .collect::<Vec<_>>(),
            );
        }
        assert_eq!(rankings[0], rankings[1]);
        assert_eq!(rankings[0], rankings[2]);
        let _ = fig;
    }
}
