//! Minimal in-tree shim for the `proptest` crate (see
//! `vendor/README.md`).
//!
//! Provides the subset the workspace's property suite uses: the
//! [`proptest!`] runner macro with `#![proptest_config(..)]`, range and
//! tuple strategies, [`Strategy::prop_map`], and the
//! `prop_assert*`/`prop_assume!` macros. Failing inputs are reported by
//! case number; there is no shrinking.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(12))]
///     #[test]
///     fn holds(x in 0u64..100, f in 0.0..1.0f64) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let __strategies = ($($strat,)+);
                let mut __ran: u32 = 0;
                let mut __rejects: u32 = 0;
                while __ran < __cfg.cases {
                    let ($($pat,)+) =
                        $crate::strategy::Strategy::generate(&__strategies, &mut __rng);
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body Ok(()) })();
                    match __outcome {
                        Ok(()) => __ran += 1,
                        Err($crate::test_runner::TestCaseError::Reject(__why)) => {
                            __rejects += 1;
                            assert!(
                                __rejects <= __cfg.max_global_rejects,
                                "proptest '{}': too many rejected cases ({}); last: {}",
                                stringify!($name), __rejects, __why,
                            );
                        }
                        Err($crate::test_runner::TestCaseError::Fail(__why)) => {
                            panic!(
                                "proptest '{}' failed at case {}: {}",
                                stringify!($name), __ran, __why,
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($lhs), stringify!($rhs), lhs, rhs,
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(*lhs == *rhs, $($fmt)+);
    }};
}

/// Fails the current case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs != *rhs,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            lhs,
        );
    }};
}

/// Rejects the current case (it is regenerated, not failed) unless
/// `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}
