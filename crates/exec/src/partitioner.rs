//! The stable object partitioner every popflow layer shares.

/// Maps object keys onto a fixed number of partitions.
///
/// The mapping is a Fibonacci-style multiplicative mix followed by a
/// modulo: the mix decorrelates partition choice from dense sequential
/// object ids, so ids `1..=n` spread evenly for any partition count
/// (a plain `id % n` would alias badly when ids are strided).
///
/// # Determinism contract
///
/// The mapping depends only on `(key, partitions)` — never on thread
/// count, hardware, or insertion order — so any two components that
/// agree on the partition count (the `popflow-serve` shard pool, the
/// single-threaded `ShardedIupt` layout, the batch parallel drivers)
/// route every object to the same partition, forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partitioner {
    parts: usize,
}

impl Partitioner {
    /// A partitioner over `parts` partitions (≥ 1).
    pub fn new(parts: usize) -> Self {
        assert!(parts >= 1, "need at least one partition");
        Partitioner { parts }
    }

    /// Number of partitions.
    pub fn parts(&self) -> usize {
        self.parts
    }

    /// The partition `key` routes to, in `0..parts`.
    #[inline]
    pub fn partition_of(&self, key: u64) -> usize {
        let mixed = key.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        ((mixed >> 32) as usize) % self.parts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_stable_and_in_range() {
        for n in 1..=8 {
            let p = Partitioner::new(n);
            assert_eq!(p.parts(), n);
            for key in 0..100u64 {
                let s = p.partition_of(key);
                assert!(s < n);
                assert_eq!(s, p.partition_of(key));
            }
        }
    }

    #[test]
    fn dense_keys_spread_across_partitions() {
        let p = Partitioner::new(4);
        let mut counts = [0usize; 4];
        for key in 1..=1000u64 {
            counts[p.partition_of(key)] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!((150..=350).contains(&c), "partition {s} got {c} of 1000");
        }
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zero_partitions_rejected() {
        let _ = Partitioner::new(0);
    }
}
