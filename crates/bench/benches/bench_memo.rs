//! The per-`SetRef` kernel memo on a skewed, dwell-cached visitor
//! stream: one Nested-Loop query evaluated memo-off (every kernel from
//! scratch), memo-cold (a fresh memo per evaluation — the miss+insert
//! path, bounding the memo's overhead over memo-off), and memo-warm (a
//! pre-populated shared memo — the hit path repeated analytics pay).
//! The warm/off gap is the win the `batch_scale` CI gate floors at
//! 1.3×; the cold/off gap is the price of a round that never reuses.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use indoor_sim::StreamScenario;
use popflow_core::query::request::NestedLoop;
use popflow_core::{BatchEngine, FlowConfig, FlowMemo, QuerySet, TkplqRequest};

fn bench(c: &mut Criterion) {
    let (world, _stream) = StreamScenario {
        num_objects: 240,
        duration_secs: 1800,
        visit_secs: (60, 120),
        destination_skew: 0.9,
        dwell_cache: true,
        seed: 23,
    }
    .build();
    let space = world.space;
    let mut iupt = world.iupt;
    let interval = iupt.time_bounds().expect("generated stream is nonempty");
    let slocs: Vec<_> = space.slocs().iter().map(|s| s.id).collect();
    let flow = FlowConfig::default().with_dp_engine();
    let base = TkplqRequest::new(5, QuerySet::new(slocs)).with_flow(flow);

    let mut group = c.benchmark_group("kernel_memo");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));

    let off = base.clone().with_flow(flow.with_memo(false));
    group.bench_function("memo_off", |b| {
        b.iter(|| {
            NestedLoop
                .evaluate(&space, &mut iupt, &off, interval)
                .unwrap()
                .ranking
                .len()
        })
    });

    group.bench_function("memo_cold", |b| {
        b.iter(|| {
            let request = base.clone().with_memo(Arc::new(FlowMemo::new()));
            NestedLoop
                .evaluate(&space, &mut iupt, &request, interval)
                .unwrap()
                .ranking
                .len()
        })
    });

    let memo = Arc::new(FlowMemo::new());
    let warm = base.clone().with_memo(Arc::clone(&memo));
    NestedLoop
        .evaluate(&space, &mut iupt, &warm, interval)
        .expect("warm-up evaluation");
    group.bench_function("memo_warm", |b| {
        b.iter(|| {
            NestedLoop
                .evaluate(&space, &mut iupt, &warm, interval)
                .unwrap()
                .ranking
                .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
