//! Closed-loop load generation against the `popflow-server` TCP
//! front-end: a connections × pressure sweep measuring end-to-end batch
//! latency (p50/p99/p999) and sustained records/s, gated on the serving
//! contract — the delta stream a client observes over the wire must be
//! **bit-identical** to an in-process `ServeEngine` fed the same
//! records, with zero protocol errors, and saturation must surface as
//! `Throttle` frames over a bounded queue, never as unbounded memory.
//!
//! Two modes share every measurement and gate:
//!
//! - **In-process** (default): each sweep point starts a fresh
//!   [`Server`] on a loopback port inside this process — the full
//!   three-point sweep (single-connection saturation, multi-connection
//!   paced, multi-connection saturation).
//! - **External** (`--server-addr`): one saturation point driven
//!   against an already-running `popflow-server` started with the same
//!   `--scale`/`--seed` (and `--streams` = the connection count). This
//!   is the CI smoke path: the gates then hold across a real process
//!   boundary.
//!
//! The machine-readable report (`BENCH_server.json`) is written before
//! the gates fire, so a failing run still leaves the evidence on disk.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use indoor_iupt::Record;
use popflow_server::protocol::{role, Frame};
use popflow_server::scenario::{partition_stream, reference_deltas, LoadProfile};
use popflow_server::{Client, Server};

use crate::bench_json::{Json, Obj};
use crate::report::Row;

use super::ExpOpts;

/// Records per ingest batch.
pub const BATCH_RECORDS: usize = 256;

/// In-flight batches per connection at a saturation point. Chosen so
/// the aggregate in-flight volume exceeds the profile's queue capacity
/// even from a single connection (12 × 256 = 3072 > 2048), forcing the
/// backpressure path.
pub const SATURATION_PIPELINE: usize = 12;

/// How the load generator reaches the server.
#[derive(Debug, Clone)]
pub enum ServerTarget {
    /// Start a fresh in-process [`Server`] per sweep point.
    InProcess,
    /// Drive an already-running `popflow-server` at this address.
    External(String),
}

/// Load-generator options beyond the global [`ExpOpts`].
#[derive(Debug, Clone)]
pub struct ServerLoadOpts {
    /// Ingest connections at the multi-connection points.
    pub connections: usize,
    /// Where the server lives.
    pub target: ServerTarget,
}

impl Default for ServerLoadOpts {
    fn default() -> Self {
        ServerLoadOpts {
            connections: 4,
            target: ServerTarget::InProcess,
        }
    }
}

/// One sweep point's client configuration.
#[derive(Debug, Clone)]
struct PointSpec {
    name: &'static str,
    connections: usize,
    /// In-flight batches per connection (1 = stop-and-wait, i.e. paced
    /// by acks; > 1 pipelines ahead and is expected to saturate).
    pipeline: usize,
}

/// One sweep point's measurements.
#[derive(Debug, Clone)]
pub struct PointOutcome {
    /// Point label.
    pub name: String,
    /// Ingest connections driven.
    pub connections: usize,
    /// In-flight batches per connection.
    pub pipeline: usize,
    /// Records sent (and eventually acked).
    pub records: usize,
    /// Batches sent (excluding throttle re-sends).
    pub batches: usize,
    /// Ingest wall-clock: first send to last ack, seconds.
    pub elapsed_secs: f64,
    /// `Throttle` frames observed by the clients.
    pub throttles: usize,
    /// Per-batch end-to-end latencies (first send → ack, spanning any
    /// throttle re-sends), milliseconds.
    pub latency_ms: Vec<f64>,
    /// Top-k delta frames received over the wire.
    pub deltas: usize,
    /// Whether the wire deltas matched the in-process reference
    /// frame-for-frame (including every flow's bit pattern).
    pub deltas_match: bool,
    /// `server.protocol_errors` from the end-of-point scrape.
    pub protocol_errors: u64,
    /// `server.queue_peak` from the end-of-point scrape.
    pub queue_peak: u64,
    /// `server.records_ingested` from the end-of-point scrape.
    pub server_records_ingested: u64,
}

impl PointOutcome {
    /// Sustained ingest throughput, records per second.
    pub fn records_per_sec(&self) -> f64 {
        if self.elapsed_secs > 0.0 {
            self.records as f64 / self.elapsed_secs
        } else {
            f64::INFINITY
        }
    }

    /// The `q` ∈ [0, 1] nearest-rank batch latency quantile, ms.
    pub fn latency_quantile_ms(&self, q: f64) -> f64 {
        if self.latency_ms.is_empty() {
            return 0.0;
        }
        let mut sorted = self.latency_ms.clone();
        sorted.sort_by(f64::total_cmp);
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }
}

/// The whole sweep's outcome.
#[derive(Debug, Clone)]
pub struct ServerLoadReport {
    /// The workload profile driven.
    pub profile: LoadProfile,
    /// Delta frames the in-process reference produced (every point must
    /// observe exactly these).
    pub reference_deltas: usize,
    /// Queue capacity the bounded-memory gate checks against.
    pub queue_capacity_records: usize,
    /// One outcome per sweep point.
    pub points: Vec<PointOutcome>,
}

/// Drives `records` through one ingest connection with a bounded
/// pipeline window, returning (per-batch latencies ms, throttles seen).
/// A throttled batch is re-sent until acked — the server's throttle
/// gate guarantees no later batch was admitted past it — and its
/// latency spans the whole retry span (the honest end-to-end cost of
/// backpressure).
fn drive_connection(
    addr: &str,
    records: Vec<Record>,
    pipeline: usize,
) -> Result<(Vec<f64>, usize), String> {
    let mut client =
        Client::connect(addr, role::INGEST).map_err(|e| format!("ingest connect: {e}"))?;
    client
        .set_read_timeout(Some(Duration::from_secs(60)))
        .map_err(|e| format!("read timeout: {e}"))?;
    let window = pipeline.max(1);
    let mut latencies = Vec::with_capacity(records.len() / BATCH_RECORDS + 1);
    let mut throttles = 0usize;
    // Outstanding (seq, first-send instant, chunk) in send order.
    let mut outstanding: VecDeque<(u64, Instant, Vec<Record>)> = VecDeque::new();
    let settle_front = |outstanding: &mut VecDeque<(u64, Instant, Vec<Record>)>,
                        client: &mut Client,
                        throttles: &mut usize,
                        latencies: &mut Vec<f64>|
     -> Result<(), String> {
        let Some((seq, sent, chunk)) = outstanding.pop_front() else {
            return Ok(());
        };
        loop {
            let acked = client
                .wait_batch_outcome(seq)
                .map_err(|e| format!("batch {seq} outcome: {e}"))?;
            if acked {
                latencies.push(sent.elapsed().as_secs_f64() * 1000.0);
                return Ok(());
            }
            *throttles += 1;
            std::thread::sleep(Duration::from_micros(500));
            client
                .send_batch(seq, chunk.clone())
                .map_err(|e| format!("batch {seq} re-send: {e}"))?;
        }
    };
    for (seq, chunk) in records.chunks(BATCH_RECORDS).enumerate() {
        if outstanding.len() >= window {
            settle_front(
                &mut outstanding,
                &mut client,
                &mut throttles,
                &mut latencies,
            )?;
        }
        let seq = seq as u64;
        client
            .send_batch(seq, chunk.to_vec())
            .map_err(|e| format!("batch {seq} send: {e}"))?;
        outstanding.push_back((seq, Instant::now(), chunk.to_vec()));
    }
    while !outstanding.is_empty() {
        settle_front(
            &mut outstanding,
            &mut client,
            &mut throttles,
            &mut latencies,
        )?;
    }
    client
        .stream_end()
        .map_err(|e| format!("stream end: {e}"))?;
    Ok((latencies, throttles))
}

/// Parses the flat `name value` lines of a Prometheus text exposition
/// (comments and histogram sub-series included — every parseable pair
/// is kept).
fn parse_prometheus(text: &str) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        if line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        if let (Some(name), Some(value)) = (parts.next(), parts.next()) {
            if let Ok(v) = value.parse::<f64>() {
                out.insert(name.to_string(), v as u64);
            }
        }
    }
    out
}

/// Runs one sweep point against `addr`: registers the profile's
/// queries, drives the partitioned stream, collects the delta frames,
/// and scrapes the server-side counters.
fn run_point(
    addr: &str,
    spec: &PointSpec,
    profile: &LoadProfile,
    parts: Vec<Vec<Record>>,
    want: &[Frame],
    query_slocs: &[Vec<u32>],
) -> Result<PointOutcome, String> {
    let mut control =
        Client::connect(addr, role::CONTROL).map_err(|e| format!("control connect: {e}"))?;
    control
        .set_read_timeout(Some(Duration::from_secs(60)))
        .map_err(|e| format!("read timeout: {e}"))?;
    for slocs in query_slocs {
        control
            .register(
                profile.k(),
                profile.bucket_millis(),
                profile.window_buckets() as u32,
                slocs,
            )
            .map_err(|e| format!("register: {e}"))?;
    }

    let records: usize = parts.iter().map(Vec::len).sum();
    let batches: usize = parts.iter().map(|p| p.len().div_ceil(BATCH_RECORDS)).sum();
    let started = Instant::now();
    let handles: Vec<_> = parts
        .into_iter()
        .map(|part| {
            let addr = addr.to_string();
            let pipeline = spec.pipeline;
            std::thread::spawn(move || drive_connection(&addr, part, pipeline))
        })
        .collect();
    let mut latency_ms = Vec::new();
    let mut throttles = 0usize;
    for handle in handles {
        let (lat, thr) = handle
            .join()
            .map_err(|_| "ingest thread panicked".to_string())??;
        latency_ms.extend(lat);
        throttles += thr;
    }
    let elapsed_secs = started.elapsed().as_secs_f64();

    // Every reference delta must arrive over the wire, frame-for-frame.
    let mut got = Vec::with_capacity(want.len());
    while got.len() < want.len() {
        let frame = control
            .wait_for(|f| matches!(f, Frame::TopkDelta { .. }))
            .map_err(|e| format!("delta {}/{} never arrived: {e}", got.len() + 1, want.len()))?;
        got.push(frame);
    }
    let deltas_match = got == want;

    let scraped = parse_prometheus(
        &control
            .metrics_text()
            .map_err(|e| format!("metrics scrape: {e}"))?,
    );
    let counter = |name: &str| scraped.get(name).copied().unwrap_or(0);
    Ok(PointOutcome {
        name: spec.name.to_string(),
        connections: spec.connections,
        pipeline: spec.pipeline,
        records,
        batches,
        elapsed_secs,
        throttles,
        latency_ms,
        deltas: got.len(),
        deltas_match,
        protocol_errors: counter("server_protocol_errors"),
        queue_peak: counter("server_queue_peak"),
        server_records_ingested: counter("server_records_ingested"),
    })
}

/// Runs the sweep: builds the profile's world and reference delta
/// stream once, then drives each point against a fresh in-process
/// server (or the single external one).
pub fn run_server_load(
    profile: &LoadProfile,
    load: &ServerLoadOpts,
) -> Result<ServerLoadReport, String> {
    let (world, stream) = profile.build();
    let query_slocs = profile.query_slocs(&world);
    let specs = profile.query_specs(&world);
    let space = Arc::new(world.space);
    let records = stream.to_records();
    let want = reference_deltas(Arc::clone(&space), profile.serve_config(), &specs, &records)
        .map_err(|e| format!("reference run: {e}"))?;
    if want.is_empty() {
        return Err("the reference stream produced no window advances".to_string());
    }

    let sweep: Vec<PointSpec> = match &load.target {
        ServerTarget::External(_) => vec![PointSpec {
            name: "external-sat",
            connections: load.connections.max(1),
            pipeline: SATURATION_PIPELINE,
        }],
        ServerTarget::InProcess => vec![
            PointSpec {
                name: "1conn-sat",
                connections: 1,
                pipeline: SATURATION_PIPELINE,
            },
            PointSpec {
                name: "multi-paced",
                connections: load.connections.max(1),
                pipeline: 1,
            },
            PointSpec {
                name: "multi-sat",
                connections: load.connections.max(1),
                pipeline: SATURATION_PIPELINE,
            },
        ],
    };

    let mut points = Vec::with_capacity(sweep.len());
    for spec in &sweep {
        let parts = partition_stream(&stream, spec.connections);
        let outcome = match &load.target {
            ServerTarget::External(addr) => {
                run_point(addr, spec, profile, parts, &want, &query_slocs)?
            }
            ServerTarget::InProcess => {
                let config = profile
                    .server_config()
                    .with_min_ingest_streams(spec.connections as u32);
                let mut server = Server::start(Arc::clone(&space), config, "127.0.0.1:0")
                    .map_err(|e| format!("server start: {e}"))?;
                let addr = server.local_addr().to_string();
                let outcome = run_point(&addr, spec, profile, parts, &want, &query_slocs);
                server.shutdown();
                outcome?
            }
        };
        println!(
            "server_load {}: {} conns × pipeline {} — {:.0} rec/s, \
             p50 {:.2} ms, p99 {:.2} ms, p999 {:.2} ms, {} throttles, \
             {} deltas (match={})",
            outcome.name,
            outcome.connections,
            outcome.pipeline,
            outcome.records_per_sec(),
            outcome.latency_quantile_ms(0.50),
            outcome.latency_quantile_ms(0.99),
            outcome.latency_quantile_ms(0.999),
            outcome.throttles,
            outcome.deltas,
            outcome.deltas_match,
        );
        points.push(outcome);
    }
    Ok(ServerLoadReport {
        profile: *profile,
        reference_deltas: want.len(),
        queue_capacity_records: profile.server_config().queue_capacity_records,
        points,
    })
}

/// Serializes the sweep as the machine-readable `BENCH_server.json`
/// payload CI archives per commit, through the shared
/// [`bench_json`](crate::bench_json) machinery.
pub fn bench_json(load: &ServerLoadOpts, report: &ServerLoadReport) -> String {
    let points: Vec<Json> = report
        .points
        .iter()
        .map(|p| {
            Obj::new()
                .field("name", p.name.clone())
                .field("connections", p.connections)
                .field("pipeline", p.pipeline)
                .field("records", p.records)
                .field("batches", p.batches)
                .num("elapsed_secs", p.elapsed_secs, 4)
                .num("records_per_sec", p.records_per_sec(), 1)
                .field("throttles", p.throttles)
                .num("batch_p50_ms", p.latency_quantile_ms(0.50), 3)
                .num("batch_p99_ms", p.latency_quantile_ms(0.99), 3)
                .num("batch_p999_ms", p.latency_quantile_ms(0.999), 3)
                .field("deltas", p.deltas)
                .field("deltas_match", p.deltas_match)
                .field("protocol_errors", p.protocol_errors)
                .field("queue_peak", p.queue_peak)
                .field("server_records_ingested", p.server_records_ingested)
                .into()
        })
        .collect();
    Json::from(
        Obj::new()
            .field("experiment", "server_load")
            .field(
                "config",
                Obj::new()
                    .num("scale", report.profile.scale, 4)
                    .field("seed", report.profile.seed)
                    .field("queries", report.profile.queries)
                    .field("connections", load.connections)
                    .field("batch_records", BATCH_RECORDS)
                    .field("queue_capacity_records", report.queue_capacity_records)
                    .field(
                        "external_server",
                        matches!(load.target, ServerTarget::External(_)),
                    ),
            )
            .field("reference_deltas", report.reference_deltas)
            .field("points", points),
    )
    .to_artifact()
}

/// The acceptance gates over a finished sweep:
///
/// - every point's wire deltas are bit-identical to the reference and
///   its scrape shows zero protocol errors;
/// - every saturating point (pipeline > 1) was actually throttled;
/// - the server-side queue peak never exceeded
///   `capacity + connections × batch` (the bounded-memory contract:
///   capacity plus at most one admitted-by-reserve batch per
///   connection).
pub fn validate(report: &ServerLoadReport) -> Result<(), String> {
    for p in &report.points {
        if !p.deltas_match {
            return Err(format!(
                "{}: wire deltas diverged from the in-process reference \
                 ({} frames compared)",
                p.name, p.deltas
            ));
        }
        if p.protocol_errors != 0 {
            return Err(format!(
                "{}: server counted {} protocol errors",
                p.name, p.protocol_errors
            ));
        }
        if p.pipeline > 1 && p.throttles == 0 {
            return Err(format!(
                "{}: a pipelined overrun ({} conns × {} batches in flight) \
                 never saw a Throttle frame — backpressure was not exercised",
                p.name, p.connections, p.pipeline
            ));
        }
        let bound = report.queue_capacity_records + p.connections * BATCH_RECORDS;
        if p.queue_peak as usize > bound {
            return Err(format!(
                "{}: queue peak {} exceeds the bounded-memory contract \
                 (capacity {} + {} conns × {} batch records = {bound})",
                p.name, p.queue_peak, report.queue_capacity_records, p.connections, BATCH_RECORDS
            ));
        }
    }
    Ok(())
}

fn report_rows(report: &ServerLoadReport) -> Vec<Row> {
    report
        .points
        .iter()
        .map(|p| {
            let mut row = Row::new(
                "server_load",
                format!("{}x{}", p.connections, p.pipeline),
                p.name.clone(),
            );
            row.time_secs = Some(p.elapsed_secs);
            row.note = format!(
                "{:.0} rec/s p50={:.2}ms p99={:.2}ms p999={:.2}ms throttles={} \
                 deltas={} match={} qpeak={}",
                p.records_per_sec(),
                p.latency_quantile_ms(0.50),
                p.latency_quantile_ms(0.99),
                p.latency_quantile_ms(0.999),
                p.throttles,
                p.deltas,
                p.deltas_match,
                p.queue_peak,
            );
            row
        })
        .collect()
}

/// The `server_load` experiment id. When `json_path` is given, the
/// machine-readable report is written there as well — before the gates
/// fire, so a failing run still leaves the evidence on disk. Exits
/// non-zero when any gate of [`validate`] fails.
pub fn server_load_with_json(
    opts: &ExpOpts,
    load: &ServerLoadOpts,
    json_path: Option<&str>,
) -> Vec<Row> {
    let profile = LoadProfile::new(opts.scale, opts.seed);
    let report = match run_server_load(&profile, load) {
        Ok(report) => report,
        Err(why) => {
            eprintln!("server_load failed to run: {why}");
            std::process::exit(1);
        }
    };
    if let Some(path) = json_path {
        crate::bench_json::write_report(
            path,
            "machine-readable server report",
            &bench_json(load, &report),
        );
    }
    if let Err(why) = validate(&report) {
        eprintln!("server_load gates failed: {why}");
        std::process::exit(1);
    }
    report_rows(&report)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature in-process sweep: all three points run, the gates
    /// pass, and the artifact is structurally sound.
    #[test]
    fn small_sweep_passes_gates() {
        // An hour of 300 visitors over 5-minute buckets — ~11k records
        // (43 batches) and several advances, fast enough for a unit
        // test, yet big enough that every saturating point has more
        // batches per connection than SATURATION_PIPELINE. That
        // surplus is what drives drive_connection's interleaved
        // new-send/re-send path (fresh batches sent while older
        // throttled ones still pend), the path the server's throttle
        // gate exists for.
        let profile = LoadProfile {
            duration_secs: 3600,
            bucket_millis: 300_000,
            window_buckets: 4,
            // Small enough that a pipelined two-connection burst
            // overruns it even on this tiny stream.
            queue_records: 256,
            ..LoadProfile::new(0.1, 9)
        };
        let load = ServerLoadOpts {
            connections: 2,
            target: ServerTarget::InProcess,
        };
        let report = run_server_load(&profile, &load).expect("sweep runs");
        assert_eq!(report.points.len(), 3);
        validate(&report).expect("gates pass");
        let json = bench_json(&load, &report);
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces:\n{json}"
        );
        for key in [
            "\"experiment\": \"server_load\"",
            "\"reference_deltas\"",
            "\"batch_p50_ms\"",
            "\"batch_p999_ms\"",
            "\"deltas_match\": true",
            "\"protocol_errors\": 0",
            "\"queue_peak\"",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        for bad in ["inf", "NaN"] {
            assert!(!json.contains(bad), "invalid JSON token {bad} in:\n{json}");
        }
        // The saturating points must have exercised backpressure, and
        // with more batches per connection than the pipeline window —
        // otherwise the interleaved new-send/re-send path (and the
        // server's ordered throttle-gate re-admission) never runs.
        for p in &report.points {
            if p.pipeline > 1 {
                assert!(p.throttles > 0, "{}: no throttles", p.name);
                assert!(
                    p.batches > p.connections * SATURATION_PIPELINE,
                    "{}: {} batches over {} connections cannot overrun a \
                     {SATURATION_PIPELINE}-batch pipeline window",
                    p.name,
                    p.batches,
                    p.connections,
                );
            }
        }
    }
}
