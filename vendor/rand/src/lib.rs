//! Minimal in-tree shim for the `rand` crate (see `vendor/README.md`).
//!
//! Implements exactly the surface the workspace uses: a deterministic
//! [`rngs::StdRng`] seeded with [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen_range`] / [`Rng::gen_bool`] over integer and float ranges.
//!
//! The generator is xoshiro256** (public domain, Blackman & Vigna)
//! seeded through SplitMix64 — statistically solid for simulation
//! workloads and, crucially, deterministic across platforms, which the
//! reproduction's fixtures and tests rely on.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`. Panics on an empty range, matching
    /// the real crate.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// A range that can be sampled uniformly — the shim's equivalent of
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps a raw word to `[0, 1)` with 53 bits of precision.
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Maps a raw word to `[0, 1]` (both endpoints reachable).
#[inline]
fn unit_f64_inclusive(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64)
}

/// Unbiased-enough bounded sample via the 128-bit multiply trick
/// (Lemire). The tiny modulo bias is irrelevant for simulation spans.
#[inline]
fn bounded_u64(word: u64, span: u64) -> u64 {
    ((u128::from(word) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                // Width via i128 so spans wider than the element type
                // (e.g. -100i8..100) don't wrap before reaching u64.
                let span = ((self.end as i128) - (self.start as i128)) as u64;
                self.start.wrapping_add(bounded_u64(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = ((hi as i128) - (lo as i128)) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng.next_u64(), span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let x = self.start
                    + (self.end - self.start) * unit_f64(rng.next_u64()) as $t;
                // Rounding (f64→f32 narrowing, or the multiply-add
                // itself) can land exactly on the excluded upper bound.
                if x >= self.end {
                    self.end.next_down().max(self.start)
                } else {
                    x
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let x = lo + (hi - lo) * unit_f64_inclusive(rng.next_u64()) as $t;
                x.clamp(lo, hi)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator — the shim's stand-in for
    /// the real crate's ChaCha-based `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the
            // xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3i64..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
            let g = rng.gen_range(1.0f64..=2.0);
            assert!((1.0..=2.0).contains(&g));
            let u = rng.gen_range(0usize..=0);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn wide_signed_ranges_do_not_wrap() {
        // Spans wider than the element type's positive half: the width
        // computation must not wrap in the narrow signed type.
        let mut rng = StdRng::seed_from_u64(99);
        let mut seen_neg = false;
        let mut seen_pos = false;
        for _ in 0..2000 {
            let x = rng.gen_range(-100i8..100);
            assert!((-100..100).contains(&x), "i8 out of range: {x}");
            seen_neg |= x < -50;
            seen_pos |= x > 50;
            let y = rng.gen_range(-2_000_000_000i32..=2_000_000_000);
            assert!((-2_000_000_000..=2_000_000_000).contains(&y));
            let z = rng.gen_range(i64::MIN..=i64::MAX);
            let _ = z; // full-width span: any value is in range
        }
        assert!(seen_neg && seen_pos, "samples cover both tails");
    }

    #[test]
    fn f32_exclusive_range_never_returns_upper_bound() {
        // Narrowing the f64 unit sample to f32 rounds to 1.0 with
        // probability ~2^-25; 100M draws would be too slow here, so
        // instead drive the sampler with the extreme words directly.
        struct Fixed(u64);
        impl crate::RngCore for Fixed {
            fn next_u64(&mut self) -> u64 {
                self.0
            }
        }
        for word in [u64::MAX, u64::MAX - (1 << 11), 0] {
            let x: f32 = crate::SampleRange::sample_from(0.0f32..1.0, &mut Fixed(word));
            assert!((0.0..1.0).contains(&x), "x = {x} for word {word:#x}");
            let y: f32 = crate::SampleRange::sample_from(0.0f32..=1.0, &mut Fixed(word));
            assert!((0.0..=1.0).contains(&y));
        }
        // The inclusive range actually reaches its upper bound.
        let top: f64 = crate::SampleRange::sample_from(0.0f64..=1.0, &mut Fixed(u64::MAX));
        assert_eq!(top, 1.0);
    }

    #[test]
    fn float_unit_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
