//! Serving demo: a simulated day of visitor tracking replayed through
//! the sharded incremental `popflow-serve` engine — eager and
//! bound-pruned advances — head-to-head against the recompute-per-slide
//! baseline.
//!
//! The stream is ingested in timestamp order across shard worker
//! threads; once per bucket the standing top-k query advances its
//! sliding window. Both engines evaluate identical windows and must
//! report identical rankings — the demo audits that on every slide while
//! reporting throughput and advance-latency percentiles. It also
//! registers four overlapping queries on one engine and reports how much
//! sealed-bucket work they share versus four dedicated engines.
//!
//! Run with:
//! ```text
//! cargo run --release -p popflow-eval --example serve_demo
//! ```
//! Optionally pass a population scale factor (default 0.1 ≈ 300
//! visitors): `... --example serve_demo -- 0.5`

use popflow_eval::experiments::streaming::{run_streaming, EngineMetrics, StreamingConfig};
use popflow_serve::metric_names;

fn print_engine(m: &EngineMetrics) {
    println!(
        "  {:<20} mean {:>8.3} ms   p50 {:>8.3} ms   p99 {:>8.3} ms   {:>9.0} rec/s ingest   {:>7} presence computations ({} cells, {} skipped)",
        m.name,
        m.mean_ms(),
        m.quantile_ms(0.50),
        m.quantile_ms(0.99),
        m.records_per_sec(),
        m.presence_computations,
        m.presence_cells,
        m.presence_skipped,
    );
}

/// The engine's own per-phase advance breakdown, from its internal
/// metric registry (wall-clock timings above are measured externally —
/// the two views cross-check each other through `phase_coverage`).
fn print_phases(m: &EngineMetrics, phases: &[&str]) {
    let Some(snap) = &m.snapshot else { return };
    let total: u64 = phases
        .iter()
        .filter_map(|p| snap.histograms.get(*p))
        .map(|h| h.sum)
        .sum();
    println!(
        "  {} phase breakdown (internal, {:.0}% of external advance wall-clock):",
        m.name,
        m.phase_coverage.unwrap_or(f64::NAN) * 100.0,
    );
    for phase in phases {
        let Some(h) = snap.histograms.get(*phase) else {
            continue;
        };
        println!(
            "    {:<32} {:>5.1}%   total {:>9.3} ms   p99 {:>9.3} ms",
            phase,
            100.0 * h.sum as f64 / total.max(1) as f64,
            h.sum as f64 / 1e6,
            h.quantile(0.99) as f64 / 1e6,
        );
    }
    // The most recent advance, attributed: which shard computed, which
    // query paid.
    if let Some(trace) = m.traces.last() {
        let busiest = trace
            .shards
            .iter()
            .max_by_key(|s| s.presence_cells)
            .map(|s| format!("shard {} ({} fresh cells)", s.shard, s.presence_cells))
            .unwrap_or_else(|| "n/a".to_string());
        let slowest = trace
            .queries
            .iter()
            .max_by_key(|q| q.ns)
            .map(|q| format!("{:.3} ms", q.ns as f64 / 1e6))
            .unwrap_or_else(|| "n/a".to_string());
        println!(
            "    last advance (#{}): {:.3} ms total, busiest {}, slowest query slice {}",
            trace.seq,
            trace.total_ns as f64 / 1e6,
            busiest,
            slowest,
        );
    }
}

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(0.1);
    let mut cfg = StreamingConfig::scaled(scale, 0x5e2e);
    // Also exercise the query registry: four overlapping standing
    // queries sharing one engine, audited against dedicated engines.
    cfg.queries = 4;
    println!(
        "streaming a simulated day: {} visitors over {} h, visits {}–{} s",
        cfg.scenario.num_objects,
        cfg.scenario.duration_secs / 3600,
        cfg.scenario.visit_secs.0,
        cfg.scenario.visit_secs.1,
    );
    println!(
        "standing query: top-{} over a {}-bucket window of {} s buckets ({} shards)\n",
        cfg.k, cfg.window_buckets, cfg.bucket_secs, cfg.num_shards,
    );

    let report = run_streaming(&cfg);
    println!(
        "replayed {} records through both engines, {} window slides:",
        report.incremental.records, report.slides
    );
    print_engine(&report.incremental);
    print_engine(&report.pruned);
    print_engine(&report.baseline);
    println!();
    print_phases(&report.incremental, &metric_names::EAGER_PHASES);
    print_phases(&report.pruned, &metric_names::PRUNED_PHASES);
    println!(
        "  instrumentation overhead: {:.3}x (paired best-case metrics-on vs metrics-off latency)",
        report.metrics_overhead,
    );
    println!(
        "\nadvance speedup: {:.1}x wall-clock ({:.1}x pruned), {:.1}x presence work; \
         bound pruning saves {:.1}% of presence cells",
        report.speedup,
        report.pruned_speedup,
        report.work_ratio,
        100.0 * (1.0 - 1.0 / report.pruned_work_ratio.max(1.0)),
    );

    if report.mismatched_slides == 0 {
        println!(
            "per-slide audit: all {} top-k lists identical across engines ✓",
            report.slides
        );
    } else {
        println!(
            "per-slide audit: {} of {} slides DIVERGED ✗",
            report.mismatched_slides, report.slides
        );
        std::process::exit(1);
    }

    if let Some(multi) = &report.multi {
        println!(
            "\nquery registry: {} overlapping queries on one engine computed {} presence \
             cells vs {} across dedicated engines ({:.2}x, lower is better)",
            multi.queries, multi.registry_cells, multi.dedicated_cells, multi.shared_work_ratio,
        );
        if multi.mismatched_slides == 0 {
            println!("multi-query audit: every registered query matched its dedicated engine ✓");
        } else {
            println!(
                "multi-query audit: {} (query, slide) pairs DIVERGED ✗",
                multi.mismatched_slides
            );
            std::process::exit(1);
        }
    }

    // The demo doubles as a smoke test: a collapsed speedup or any
    // divergence is a regression worth failing loudly on.
    if report.speedup < 2.0 {
        eprintln!(
            "warning: incremental speedup {:.2}x below the expected envelope",
            report.speedup
        );
    }
}
