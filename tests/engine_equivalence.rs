//! The three presence engines (path enumeration, transition DP, hybrid)
//! must produce identical flows and rankings on generated data, under
//! both normalizations and with reduction on or off — the cross-checks
//! that make the DP a safe drop-in for the paper's enumeration.

use popflow_core::{nested_loop, FlowConfig, Normalization, PresenceEngine, TkPlQuery};
use popflow_eval::Lab;

fn run(lab: &mut Lab, query: &TkPlQuery, cfg: &FlowConfig) -> Vec<(u32, f64)> {
    let (space, iupt) = lab.space_and_iupt();
    nested_loop(space, iupt, query, cfg)
        .expect("evaluates")
        .ranking
        .iter()
        .map(|r| (r.sloc.0, r.flow))
        .collect()
}

#[test]
fn engines_agree_on_generated_worlds() {
    for seed in [11u64, 12] {
        let mut lab = Lab::new(indoor_sim::Scenario::tiny().with_seed(seed));
        // Pure (no-reduction) enumeration is exponential in the window, so
        // this comparison caps the sample sets at 2 and uses a one-minute
        // window; the hybrid/DP pair is additionally exercised on the full
        // window below.
        lab.cap_mss(2);
        let query = TkPlQuery::new(6, lab.query_fraction(1.0, seed), lab.random_window(1, seed));
        for use_reduction in [true, false] {
            for normalization in [Normalization::ValidPaths, Normalization::FullProduct] {
                let base = FlowConfig {
                    use_reduction,
                    normalization,
                    // Generous budget so pure enumeration completes on the
                    // tiny world.
                    path_budget: 50_000_000,
                    ..FlowConfig::default()
                };
                let enumeration = run(
                    &mut lab,
                    &query,
                    &FlowConfig {
                        engine: PresenceEngine::PathEnumeration,
                        ..base
                    },
                );
                let dp = run(
                    &mut lab,
                    &query,
                    &FlowConfig {
                        engine: PresenceEngine::TransitionDp,
                        ..base
                    },
                );
                let hybrid = run(
                    &mut lab,
                    &query,
                    &FlowConfig {
                        engine: PresenceEngine::Hybrid,
                        ..base
                    },
                );
                for ((a, b), c) in enumeration.iter().zip(dp.iter()).zip(hybrid.iter()) {
                    assert_eq!(a.0, b.0, "ranking ids (enum vs dp)");
                    assert_eq!(a.0, c.0, "ranking ids (enum vs hybrid)");
                    assert!(
                        (a.1 - b.1).abs() < 1e-9,
                        "flow enum {} vs dp {} (seed {seed}, red {use_reduction}, {normalization:?})",
                        a.1,
                        b.1
                    );
                    assert!((a.1 - c.1).abs() < 1e-9, "flow enum vs hybrid");
                }
            }
        }
    }
}

#[test]
fn hybrid_and_dp_agree_on_full_windows() {
    let mut lab = Lab::new(indoor_sim::Scenario::tiny().with_seed(5));
    let query = TkPlQuery::new(6, lab.query_fraction(1.0, 6), lab.world.full_interval());
    let base = FlowConfig::default();
    let hybrid = run(
        &mut lab,
        &query,
        &FlowConfig {
            engine: PresenceEngine::Hybrid,
            ..base
        },
    );
    let dp = run(
        &mut lab,
        &query,
        &FlowConfig {
            engine: PresenceEngine::TransitionDp,
            ..base
        },
    );
    for (a, b) in hybrid.iter().zip(dp.iter()) {
        assert_eq!(a.0, b.0);
        assert!((a.1 - b.1).abs() < 1e-9, "{} vs {}", a.1, b.1);
    }
}

#[test]
fn hybrid_fallback_is_exact() {
    // Force the hybrid engine into its DP fallback with a tiny budget and
    // verify the flows still match the pure DP.
    let mut lab = Lab::new(indoor_sim::Scenario::tiny().with_seed(21));
    let query = TkPlQuery::new(6, lab.query_fraction(1.0, 3), lab.world.full_interval());
    let hybrid_starved = run(
        &mut lab,
        &query,
        &FlowConfig {
            engine: PresenceEngine::Hybrid,
            path_budget: 8, // everything falls back
            ..FlowConfig::default()
        },
    );
    let dp = run(
        &mut lab,
        &query,
        &FlowConfig {
            engine: PresenceEngine::TransitionDp,
            ..FlowConfig::default()
        },
    );
    assert_eq!(hybrid_starved, dp);
}
