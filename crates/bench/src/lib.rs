//! Shared workload builders for the Criterion benchmarks.
//!
//! Every benchmark regenerates one table or figure of the paper's
//! evaluation (see DESIGN.md §4 for the index). Workloads are scaled-down
//! but shape-preserving: the quantities each experiment varies (k, |Q|,
//! Δt, mss, T, μ, |O|) are swept exactly as in the paper, while the
//! simulated population/duration is reduced so `cargo bench` completes in
//! minutes. Absolute times therefore differ from the paper's testbed;
//! orderings and trends are the reproduction target (EXPERIMENTS.md
//! records both).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use popflow_core::TkPlQuery;
use popflow_eval::Lab;

pub use popflow_eval::{run_method, Method, MethodInput};

/// Benchmark scale for the synthetic scenario.
pub const BENCH_SCALE: f64 = 0.01;

/// A real-analog lab (35 objects, 150 min) — generate once per bench
/// target.
pub fn real_lab() -> Lab {
    Lab::real_analog()
}

/// A scaled synthetic lab.
pub fn synthetic_lab() -> Lab {
    Lab::synthetic(BENCH_SCALE)
}

/// A deterministic query over `fraction` of the lab's S-locations and a
/// `dt_min`-minute window.
pub fn query(lab: &Lab, k: usize, fraction: f64, dt_min: i64, seed: u64) -> TkPlQuery {
    TkPlQuery::new(
        k,
        lab.query_fraction(fraction, seed),
        lab.random_window(dt_min, seed ^ 0xbe9c4),
    )
}

/// A query over an explicit number of S-locations.
pub fn query_n(lab: &Lab, k: usize, n_locations: usize, dt_min: i64, seed: u64) -> TkPlQuery {
    let total = lab.all_slocs().len();
    let fraction = (n_locations as f64 / total as f64).min(1.0);
    query(lab, k, fraction, dt_min, seed)
}

/// Runs a method once against the lab (Criterion times the enclosing
/// closure); returns the top flow so the work cannot be optimized away.
pub fn run_once(lab: &mut Lab, method: Method, q: &TkPlQuery) -> f64 {
    let scored = lab.evaluate(method, q);
    scored
        .run
        .outcome
        .ranking
        .first()
        .map(|r| r.flow)
        .unwrap_or(0.0)
}
