//! Batch scaling experiment: the parallel TkPLQ drivers
//! (`nested_loop_par`, `best_first_par`) vs. their serial counterparts
//! on one batch window, swept over thread counts.
//!
//! The quantities reported are records/s (window records divided by
//! evaluation wall-clock) and the speedup over the serial driver, plus a
//! per-point equality audit: every parallel outcome must match the
//! serial ranking **bit for bit** (`f64::to_bits` on every flow), at
//! every thread count — the `popflow-exec` determinism contract made
//! observable. The machine-readable report (`BENCH_batch.json`) is
//! archived by CI per commit, giving the batch path a scaling
//! trajectory alongside the serving path's `BENCH_streaming.json`.

use std::time::Instant;

use popflow_core::{
    best_first, best_first_par, nested_loop, nested_loop_par, FlowConfig, QueryOutcome, TkPlQuery,
};

use crate::lab::Lab;
use crate::report::Row;

use super::ExpOpts;

/// Thread counts the experiment sweeps.
pub const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Configuration of one batch scaling run.
#[derive(Debug, Clone)]
pub struct BatchScaleConfig {
    /// Synthetic scenario scale (1.0 = the paper's 5K objects / 2 h).
    pub scale: f64,
    /// Top-k size.
    pub k: usize,
    /// Timed repetitions per point (the minimum is reported).
    pub repeats: usize,
    /// Workload seed.
    pub seed: u64,
}

impl BatchScaleConfig {
    /// The default comparison shape at a given scale.
    pub fn scaled(scale: f64, repeats: usize, seed: u64) -> Self {
        BatchScaleConfig {
            scale,
            k: 5,
            repeats: repeats.max(1),
            seed,
        }
    }
}

/// One measured (driver, thread-count) point.
#[derive(Debug, Clone)]
pub struct ThreadPoint {
    /// Driver display name.
    pub name: String,
    /// Worker threads the driver was allowed to fork.
    pub threads: usize,
    /// Best-of-repeats evaluation wall-clock, seconds.
    pub secs: f64,
    /// Window records divided by `secs`.
    pub records_per_sec: f64,
    /// Serial wall-clock of the same algorithm divided by `secs`.
    pub speedup: f64,
    /// Whether the outcome matched the serial driver bit for bit.
    pub matches_serial: bool,
}

/// The outcome of one batch scaling run.
#[derive(Debug, Clone)]
pub struct BatchScaleReport {
    /// Records in the evaluated window.
    pub records: usize,
    /// Objects in the evaluated window.
    pub objects: usize,
    /// Query set size.
    pub query_locations: usize,
    /// Serial `nested_loop` wall-clock, seconds (best of repeats).
    pub nl_serial_secs: f64,
    /// Serial `best_first` wall-clock, seconds (best of repeats).
    pub bf_serial_secs: f64,
    /// One point per (driver, thread count).
    pub points: Vec<ThreadPoint>,
    /// Points whose outcome diverged from serial (must be 0).
    pub mismatched_points: usize,
}

impl BatchScaleReport {
    /// The `nested_loop_par` speedup at `threads`, if that point exists.
    pub fn nl_speedup_at(&self, threads: usize) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.name == "nested_loop_par" && p.threads == threads)
            .map(|p| p.speedup)
    }
}

/// Bit-exact outcome comparison: same slocs at every rank, same flow
/// bits.
fn outcomes_identical(a: &QueryOutcome, b: &QueryOutcome) -> bool {
    a.ranking.len() == b.ranking.len()
        && a.ranking
            .iter()
            .zip(b.ranking.iter())
            .all(|(x, y)| x.sloc == y.sloc && x.flow.to_bits() == y.flow.to_bits())
}

/// Times `run` `repeats` times, returning the fastest wall-clock and the
/// (identical) outcome.
fn best_of<F: FnMut() -> QueryOutcome>(repeats: usize, mut run: F) -> (f64, QueryOutcome) {
    let mut best = f64::INFINITY;
    let mut outcome = None;
    for _ in 0..repeats.max(1) {
        let t0 = Instant::now();
        let out = run();
        best = best.min(t0.elapsed().as_secs_f64());
        outcome = Some(out);
    }
    (best, outcome.expect("at least one repetition"))
}

/// Runs the full comparison: generate the workload once, evaluate the
/// serial drivers, then each parallel driver across [`THREAD_SWEEP`].
pub fn run_batch_scale(cfg: &BatchScaleConfig) -> BatchScaleReport {
    let mut lab = Lab::new(indoor_sim::Scenario::synthetic_scaled(cfg.scale).with_seed(cfg.seed));
    let query = TkPlQuery::new(
        cfg.k,
        popflow_core::QuerySet::new(lab.all_slocs()),
        lab.world.full_interval(),
    );
    // The DP engine: exact, per-object cost bounded by O(n · m²), so the
    // measurement reflects parallel scaling rather than path-count
    // variance across objects.
    let flow = FlowConfig::default().with_dp_engine();

    let (records, objects) = {
        let (_, iupt) = lab.space_and_iupt();
        let records = iupt.range_query(query.interval).len();
        let objects = iupt.sequences_in(query.interval).len();
        (records, objects)
    };

    let (nl_serial_secs, nl_serial) = best_of(cfg.repeats, || {
        let (space, iupt) = lab.space_and_iupt();
        nested_loop(space, iupt, &query, &flow).expect("serial nested_loop")
    });
    let (bf_serial_secs, bf_serial) = best_of(cfg.repeats, || {
        let (space, iupt) = lab.space_and_iupt();
        best_first(space, iupt, &query, &flow).expect("serial best_first")
    });

    let mut points = Vec::new();
    for &threads in &THREAD_SWEEP {
        let par_flow = FlowConfig {
            exec: popflow_core::ExecConfig::with_threads(threads),
            ..flow
        };
        let (secs, outcome) = best_of(cfg.repeats, || {
            let (space, iupt) = lab.space_and_iupt();
            nested_loop_par(space, iupt, &query, &par_flow).expect("nested_loop_par")
        });
        points.push(ThreadPoint {
            name: "nested_loop_par".into(),
            threads,
            secs,
            records_per_sec: records as f64 / secs.max(f64::MIN_POSITIVE),
            speedup: nl_serial_secs / secs.max(f64::MIN_POSITIVE),
            matches_serial: outcomes_identical(&outcome, &nl_serial),
        });

        let (secs, outcome) = best_of(cfg.repeats, || {
            let (space, iupt) = lab.space_and_iupt();
            best_first_par(space, iupt, &query, &par_flow).expect("best_first_par")
        });
        points.push(ThreadPoint {
            name: "best_first_par".into(),
            threads,
            secs,
            records_per_sec: records as f64 / secs.max(f64::MIN_POSITIVE),
            speedup: bf_serial_secs / secs.max(f64::MIN_POSITIVE),
            matches_serial: outcomes_identical(&outcome, &bf_serial),
        });
    }

    let mismatched_points = points.iter().filter(|p| !p.matches_serial).count();
    BatchScaleReport {
        records,
        objects,
        query_locations: query.query_set.len(),
        nl_serial_secs,
        bf_serial_secs,
        points,
        mismatched_points,
    }
}

/// Renders a report as experiment rows.
pub fn report_rows(cfg: &BatchScaleConfig, report: &BatchScaleReport) -> Vec<Row> {
    let x = format!("objs={} recs={}", report.objects, report.records);
    let mut rows = Vec::new();
    for (name, secs) in [
        ("nested_loop (serial)", report.nl_serial_secs),
        ("best_first (serial)", report.bf_serial_secs),
    ] {
        let mut row = Row::new("batch_scale", &x, name);
        row.time_secs = Some(secs);
        row.note = format!("{:.0} rec/s", report.records as f64 / secs.max(1e-12));
        rows.push(row);
    }
    for p in &report.points {
        let mut row = Row::new("batch_scale", &x, format!("{}@{}t", p.name, p.threads));
        row.time_secs = Some(p.secs);
        row.note = format!(
            "{:.0} rec/s speedup×{:.2}{}",
            p.records_per_sec,
            p.speedup,
            if p.matches_serial { "" } else { " MISMATCH" },
        );
        rows.push(row);
    }
    let mut summary = Row::new("batch_scale", &x, "audit");
    summary.note = format!(
        "mismatches={} (every parallel point must equal serial bit-for-bit) k={} scale={}",
        report.mismatched_points, cfg.k, cfg.scale
    );
    rows.push(summary);
    rows
}

/// Serializes a report as the machine-readable `BENCH_batch.json`
/// payload CI archives per commit. Hand-rolled JSON: the workspace
/// deliberately carries no serialization dependency.
pub fn bench_json(cfg: &BatchScaleConfig, report: &BatchScaleReport) -> String {
    use crate::report::json_num;
    let points: Vec<String> = report
        .points
        .iter()
        .map(|p| {
            format!(
                concat!(
                    "{{\"name\":\"{}\",\"threads\":{},\"secs\":{},",
                    "\"records_per_sec\":{},\"speedup\":{},\"matches_serial\":{}}}"
                ),
                p.name,
                p.threads,
                json_num(p.secs, 6),
                json_num(p.records_per_sec, 1),
                json_num(p.speedup, 3),
                p.matches_serial,
            )
        })
        .collect();
    format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"batch_scale\",\n",
            "  \"config\": {{\"scale\": {}, \"k\": {}, \"repeats\": {}, \"seed\": {}}},\n",
            "  \"records\": {},\n",
            "  \"objects\": {},\n",
            "  \"query_locations\": {},\n",
            "  \"nested_loop_serial_secs\": {},\n",
            "  \"best_first_serial_secs\": {},\n",
            "  \"speedup_4t\": {},\n",
            "  \"mismatched_points\": {},\n",
            "  \"points\": [\n    {}\n  ]\n",
            "}}\n"
        ),
        cfg.scale,
        cfg.k,
        cfg.repeats,
        cfg.seed,
        report.records,
        report.objects,
        report.query_locations,
        json_num(report.nl_serial_secs, 6),
        json_num(report.bf_serial_secs, 6),
        report
            .nl_speedup_at(4)
            .map_or("null".to_string(), |s| json_num(s, 3)),
        report.mismatched_points,
        points.join(",\n    "),
    )
}

/// The `batch_scale` experiment id. When `json_path` is given, the
/// machine-readable report is written there as well — success or failure
/// of the write is reported truthfully on stdout/stderr. Panics when any
/// parallel point diverged from serial, so a CI run is a live
/// determinism gate, not just a measurement.
pub fn batch_scale_with_json(opts: &ExpOpts, json_path: Option<&str>) -> Vec<Row> {
    let cfg = BatchScaleConfig::scaled(opts.scale, opts.repeats, opts.seed);
    let report = run_batch_scale(&cfg);
    if let Some(path) = json_path {
        match std::fs::write(path, bench_json(&cfg, &report)) {
            Ok(()) => println!("wrote machine-readable batch report to {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
    assert_eq!(
        report.mismatched_points, 0,
        "parallel drivers diverged from serial"
    );
    report_rows(&cfg, &report)
}

/// The `batch_scale` experiment id without a JSON artifact.
pub fn batch_scale(opts: &ExpOpts) -> Vec<Row> {
    batch_scale_with_json(opts, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature end-to-end run: every parallel point bit-matches
    /// serial and the JSON artifact is structurally sound.
    #[test]
    fn small_batch_scale_is_consistent() {
        let cfg = BatchScaleConfig {
            scale: 0.01,
            k: 3,
            repeats: 1,
            seed: 7,
        };
        let report = run_batch_scale(&cfg);
        assert!(report.records > 0);
        assert!(report.objects > 0);
        assert_eq!(report.points.len(), 2 * THREAD_SWEEP.len());
        assert_eq!(
            report.mismatched_points, 0,
            "parallel diverged: {:?}",
            report.points
        );
        assert!(report.nl_speedup_at(4).is_some());

        let json = bench_json(&cfg, &report);
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces:\n{json}"
        );
        for key in [
            "\"speedup_4t\"",
            "\"mismatched_points\": 0",
            "\"nested_loop_par\"",
            "\"best_first_par\"",
            "\"matches_serial\":true",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        for bad in ["inf", "NaN"] {
            assert!(!json.contains(bad), "invalid JSON token {bad} in:\n{json}");
        }
    }
}
