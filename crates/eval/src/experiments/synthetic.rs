//! Experiments on the synthetic building (§5.3): Figures 14–21 and
//! Table 7. Default parameters follow the paper's Table 6: k = 10,
//! |Q| = 8 %, |O| = 5K, T = 3 s, μ = 5 m, Δt = 30 min — all scaled by
//! `ExpOpts::scale` in object count / duration.

use indoor_sim::Scenario;
use popflow_core::TkPlQuery;

use crate::experiments::{run_point, seed_for, ExpOpts};
use crate::lab::Lab;
use crate::method::Method;
use crate::report::Row;

const DEFAULT_K: usize = 10;
const DEFAULT_Q_FRACTION: f64 = 0.08;
const DEFAULT_DT_MIN: i64 = 30;

fn queries(
    lab: &Lab,
    opts: &ExpOpts,
    exp_tag: u64,
    point: u64,
    k: usize,
    q_fraction: f64,
    dt_min: i64,
) -> Vec<TkPlQuery> {
    (0..opts.repeats)
        .map(|r| {
            let seed = seed_for(opts, exp_tag, point, r as u64);
            TkPlQuery::new(
                k,
                lab.query_fraction(q_fraction, seed),
                lab.random_window(dt_min, seed ^ 0xbeef),
            )
        })
        .collect()
}

fn exact_and_counting_methods(opts: &ExpOpts) -> Vec<Method> {
    vec![
        Method::Nl,
        Method::Bf,
        Method::Sc,
        Method::ScRho(0.2),
        Method::Mc(opts.mc_rounds_synthetic),
    ]
}

fn effectiveness_methods(opts: &ExpOpts) -> Vec<Method> {
    vec![
        Method::Bf,
        Method::Sc,
        Method::ScRho(0.2),
        Method::Mc(opts.mc_rounds_synthetic),
    ]
}

/// Figure 14: running time vs the maximum positioning period
/// T ∈ {1, 3, 5, 7} s and vs the positioning error μ ∈ {3, 5, 7} m.
pub fn fig14(opts: &ExpOpts) -> Vec<Row> {
    let mut lab = Lab::synthetic(opts.scale);
    let mut rows = Vec::new();
    for (pi, t) in [1.0f64, 3.0, 5.0, 7.0].into_iter().enumerate() {
        lab.reposition(t, 5.0);
        let qs = queries(
            &lab,
            opts,
            14,
            pi as u64,
            DEFAULT_K,
            DEFAULT_Q_FRACTION,
            DEFAULT_DT_MIN,
        );
        rows.extend(run_point(
            &mut lab,
            "fig14",
            &format!("T={t}s"),
            &exact_and_counting_methods(opts),
            &qs,
        ));
    }
    for (pi, mu) in [3.0f64, 5.0, 7.0].into_iter().enumerate() {
        lab.reposition(3.0, mu);
        let qs = queries(
            &lab,
            opts,
            14,
            (pi + 10) as u64,
            DEFAULT_K,
            DEFAULT_Q_FRACTION,
            DEFAULT_DT_MIN,
        );
        rows.extend(run_point(
            &mut lab,
            "fig14",
            &format!("mu={mu}m"),
            &exact_and_counting_methods(opts),
            &qs,
        ));
    }
    rows
}

/// Figure 15: effectiveness vs T.
pub fn fig15(opts: &ExpOpts) -> Vec<Row> {
    let mut lab = Lab::synthetic(opts.scale);
    let mut rows = Vec::new();
    for (pi, t) in [1.0f64, 3.0, 5.0, 7.0].into_iter().enumerate() {
        lab.reposition(t, 5.0);
        let qs = queries(
            &lab,
            opts,
            15,
            pi as u64,
            DEFAULT_K,
            DEFAULT_Q_FRACTION,
            DEFAULT_DT_MIN,
        );
        rows.extend(run_point(
            &mut lab,
            "fig15",
            &format!("T={t}s"),
            &effectiveness_methods(opts),
            &qs,
        ));
    }
    rows
}

/// Figure 16: effectiveness vs μ.
pub fn fig16(opts: &ExpOpts) -> Vec<Row> {
    let mut lab = Lab::synthetic(opts.scale);
    let mut rows = Vec::new();
    for (pi, mu) in [3.0f64, 5.0, 7.0].into_iter().enumerate() {
        lab.reposition(3.0, mu);
        let qs = queries(
            &lab,
            opts,
            16,
            pi as u64,
            DEFAULT_K,
            DEFAULT_Q_FRACTION,
            DEFAULT_DT_MIN,
        );
        rows.extend(run_point(
            &mut lab,
            "fig16",
            &format!("mu={mu}m"),
            &effectiveness_methods(opts),
            &qs,
        ));
    }
    rows
}

/// Figure 17: running time vs |O| ∈ {2.5K, 5K, 7.5K, 10K} (scaled).
pub fn fig17(opts: &ExpOpts) -> Vec<Row> {
    object_sweep(opts, "fig17", &|opts| exact_and_counting_methods(opts))
}

/// Figure 20: effectiveness vs |O| (same sweep, effectiveness focus).
pub fn fig20(opts: &ExpOpts) -> Vec<Row> {
    object_sweep(opts, "fig20", &|opts| effectiveness_methods(opts))
}

fn object_sweep(opts: &ExpOpts, exp: &str, methods: &dyn Fn(&ExpOpts) -> Vec<Method>) -> Vec<Row> {
    let mut rows = Vec::new();
    for (pi, base) in [2500usize, 5000, 7500, 10000].into_iter().enumerate() {
        let mut scenario = Scenario::synthetic_scaled(opts.scale);
        scenario.mobility.num_objects = ((base as f64 * opts.scale) as usize).max(10);
        let mut lab = Lab::new(scenario);
        let qs = queries(
            &lab,
            opts,
            17,
            pi as u64,
            DEFAULT_K,
            DEFAULT_Q_FRACTION,
            DEFAULT_DT_MIN,
        );
        let label = format!("|O|={base}x{}", opts.scale);
        rows.extend(run_point(&mut lab, exp, &label, &methods(opts), &qs));
    }
    rows
}

/// Figure 18: effectiveness vs k ∈ {5, 10, 15, 20}.
pub fn fig18(opts: &ExpOpts) -> Vec<Row> {
    let mut lab = Lab::synthetic(opts.scale);
    let mut rows = Vec::new();
    for (pi, k) in [5usize, 10, 15, 20].into_iter().enumerate() {
        let qs = queries(
            &lab,
            opts,
            18,
            pi as u64,
            k,
            DEFAULT_Q_FRACTION,
            DEFAULT_DT_MIN,
        );
        rows.extend(run_point(
            &mut lab,
            "fig18",
            &format!("k={k}"),
            &effectiveness_methods(opts),
            &qs,
        ));
    }
    rows
}

/// Figure 19: effectiveness vs |Q| ∈ {4, 8, 12}%.
pub fn fig19(opts: &ExpOpts) -> Vec<Row> {
    let mut lab = Lab::synthetic(opts.scale);
    let mut rows = Vec::new();
    for (pi, pct) in [4u32, 8, 12].into_iter().enumerate() {
        let qs = queries(
            &lab,
            opts,
            19,
            pi as u64,
            DEFAULT_K,
            pct as f64 / 100.0,
            DEFAULT_DT_MIN,
        );
        rows.extend(run_point(
            &mut lab,
            "fig19",
            &format!("|Q|={pct}%"),
            &effectiveness_methods(opts),
            &qs,
        ));
    }
    rows
}

/// Figure 21: effectiveness vs Δt ∈ {15, 30, 60, 120} minutes.
pub fn fig21(opts: &ExpOpts) -> Vec<Row> {
    let mut lab = Lab::synthetic(opts.scale);
    let mut rows = Vec::new();
    for (pi, dt) in [15i64, 30, 60, 120].into_iter().enumerate() {
        let qs = queries(&lab, opts, 21, pi as u64, DEFAULT_K, DEFAULT_Q_FRACTION, dt);
        rows.extend(run_point(
            &mut lab,
            "fig21",
            &format!("dt={dt}min"),
            &effectiveness_methods(opts),
            &qs,
        ));
    }
    rows
}

/// Table 7: Kendall τ of SCC, UR, and BF over k ∈ {5, 10, 15, 20} ×
/// |Q| ∈ {4, 8, 12}% on RFID tracking data derived from the same
/// trajectories.
pub fn table7(opts: &ExpOpts) -> Vec<Row> {
    let mut lab = Lab::synthetic(opts.scale);
    lab.ensure_rfid();
    let mut rows = Vec::new();
    for (qi, pct) in [4u32, 8, 12].into_iter().enumerate() {
        for (ki, k) in [5usize, 10, 15, 20].into_iter().enumerate() {
            let qs = queries(
                &lab,
                opts,
                7,
                (qi * 4 + ki) as u64,
                k,
                pct as f64 / 100.0,
                DEFAULT_DT_MIN,
            );
            rows.extend(run_point(
                &mut lab,
                "table7",
                &format!("|Q|={pct}%,k={k}"),
                &[Method::Scc, Method::Ur, Method::Bf],
                &qs,
            ));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn micro_opts() -> ExpOpts {
        ExpOpts {
            scale: 0.004, // 20 objects, 10 minutes
            repeats: 1,
            mc_rounds_synthetic: 5,
            ..ExpOpts::default()
        }
    }

    #[test]
    fn fig19_runs_at_micro_scale() {
        let rows = fig19(&micro_opts());
        assert_eq!(rows.len(), 3 * 4);
        for r in &rows {
            assert!((-1.0..=1.0).contains(&r.tau.unwrap()));
        }
    }

    #[test]
    fn table7_runs_at_micro_scale() {
        let rows = table7(&micro_opts());
        assert_eq!(rows.len(), 3 * 4 * 3);
        assert!(rows.iter().any(|r| r.method == "SCC"));
        assert!(rows.iter().any(|r| r.method == "UR"));
    }
}
