//! `indoor-sim` — the data-generation substrate of the reproduction,
//! replacing the paper's Vita toolkit and testbed (§5): parametric
//! buildings, random-waypoint mobility along shortest indoor paths,
//! WkNN-style probabilistic positioning, RFID tracking for the SCC/UR
//! comparators, and ground-truth extraction.
//!
//! Everything is deterministic under a fixed seed, so experiments and
//! benchmarks are reproducible end to end.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod building_gen;
pub mod ground_truth;
pub mod mobility;
pub mod positioning;
pub mod rfid_sim;
pub mod scenario;
pub mod stream;
pub mod trajectory;

pub use building_gen::{generate_building, BuildingGenConfig};
pub use ground_truth::{ground_truth_flows, ground_truth_topk};
pub use mobility::{simulate_mobility, MobilityConfig};
pub use positioning::{generate_iupt, PositioningConfig, SampleSizePolicy};
pub use rfid_sim::{deploy_readers, generate_rfid_data, RfidConfig};
pub use scenario::{Scenario, World};
pub use stream::{RecordStream, StreamScenario};
pub use trajectory::{MotionEvent, Trajectory};
