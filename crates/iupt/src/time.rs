/// A point in time, in milliseconds since an arbitrary epoch (simulation
/// start for generated data).
///
/// The paper's timestamps (`t1 … t8` in Table 2) are opaque sampling
/// instants; milliseconds give enough resolution for positioning periods
/// down to fractions of a second while keeping arithmetic exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Timestamp(pub i64);

impl Timestamp {
    /// From whole seconds.
    pub const fn from_secs(s: i64) -> Self {
        Timestamp(s * 1000)
    }

    /// From whole minutes.
    pub const fn from_mins(m: i64) -> Self {
        Timestamp(m * 60_000)
    }

    /// Raw milliseconds.
    pub const fn millis(self) -> i64 {
        self.0
    }

    /// Seconds, truncating.
    pub const fn as_secs(self) -> i64 {
        self.0 / 1000
    }

    /// `self + ms`.
    pub const fn plus_millis(self, ms: i64) -> Self {
        Timestamp(self.0 + ms)
    }

    /// `self + s` seconds.
    pub const fn plus_secs(self, s: i64) -> Self {
        Timestamp(self.0 + s * 1000)
    }

    /// Difference `self − other` in milliseconds.
    pub const fn diff_millis(self, other: Timestamp) -> i64 {
        self.0 - other.0
    }
}

impl std::fmt::Display for Timestamp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ms = self.0 % 1000;
        let total_s = self.0 / 1000;
        let s = total_s % 60;
        let m = (total_s / 60) % 60;
        let h = total_s / 3600;
        if ms == 0 {
            write!(f, "{h:02}:{m:02}:{s:02}")
        } else {
            write!(f, "{h:02}:{m:02}:{s:02}.{ms:03}")
        }
    }
}

/// A closed time interval `[start, end]` — the query window `[ts, te]` of
/// the Top-k Popular Location Query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimeInterval {
    /// First millisecond inside the window.
    pub start: Timestamp,
    /// Last millisecond inside the window (inclusive).
    pub end: Timestamp,
}

impl TimeInterval {
    /// Creates the interval; `start` must not exceed `end`.
    pub fn new(start: Timestamp, end: Timestamp) -> Self {
        assert!(start <= end, "interval start must not exceed end");
        TimeInterval { start, end }
    }

    /// Whether `t` falls inside (boundaries included; the paper assumes
    /// `ts` and `te` are aligned with sampling times).
    #[inline]
    pub fn contains(&self, t: Timestamp) -> bool {
        t >= self.start && t <= self.end
    }

    /// Interval length in milliseconds.
    pub fn duration_millis(&self) -> i64 {
        self.end.diff_millis(self.start)
    }
}

impl std::fmt::Display for TimeInterval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {}]", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Timestamp::from_secs(3).millis(), 3000);
        assert_eq!(Timestamp::from_mins(2).as_secs(), 120);
        assert_eq!(Timestamp(500).plus_secs(1).millis(), 1500);
        assert_eq!(
            Timestamp::from_secs(10).diff_millis(Timestamp::from_secs(7)),
            3000
        );
    }

    #[test]
    fn interval_contains_boundaries() {
        let iv = TimeInterval::new(Timestamp::from_secs(1), Timestamp::from_secs(8));
        assert!(iv.contains(Timestamp::from_secs(1)));
        assert!(iv.contains(Timestamp::from_secs(8)));
        assert!(!iv.contains(Timestamp::from_secs(9)));
        assert_eq!(iv.duration_millis(), 7000);
    }

    #[test]
    #[should_panic(expected = "interval start")]
    fn inverted_interval_panics() {
        TimeInterval::new(Timestamp::from_secs(2), Timestamp::from_secs(1));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Timestamp::from_secs(3671).to_string(), "01:01:11");
        assert_eq!(Timestamp(1500).to_string(), "00:00:01.500");
        let iv = TimeInterval::new(Timestamp(0), Timestamp::from_secs(60));
        assert_eq!(iv.to_string(), "[00:00:00, 00:01:00]");
    }
}
