use indoor_geom::Rect;

/// A leaf entry of the aggregate tree: one MBR plus its payload.
#[derive(Debug, Clone)]
pub struct AggEntry<T> {
    /// Bounding rectangle of the entry.
    pub mbr: Rect,
    /// The indexed payload.
    pub data: T,
}

/// Children of an aggregate node: either leaf entries or child nodes.
#[derive(Debug, Clone)]
pub enum AggChildren<T> {
    /// Leaf level: data entries.
    Leaf(Vec<AggEntry<T>>),
    /// Internal level: child nodes.
    Nodes(Vec<AggNode<T>>),
}

/// A node of the COUNT-aggregate R-tree. `count` is the number of leaf
/// entries in the subtree — the quantity Algorithm 4 (Best-First) uses to
/// upper-bound flow values, exploiting that an object's presence in any
/// S-location never exceeds 1 (§2.3).
#[derive(Debug, Clone)]
pub struct AggNode<T> {
    /// MBR over the subtree.
    pub mbr: Rect,
    /// Number of leaf entries in the subtree.
    pub count: usize,
    /// Leaf entries or child nodes.
    pub children: AggChildren<T>,
}

impl<T> AggNode<T> {
    /// Whether this node's children are leaf entries.
    pub fn is_leaf(&self) -> bool {
        matches!(self.children, AggChildren::Leaf(_))
    }

    /// Leaf entries of this node (empty slice for internal nodes).
    pub fn entries(&self) -> &[AggEntry<T>] {
        match &self.children {
            AggChildren::Leaf(e) => e,
            AggChildren::Nodes(_) => &[],
        }
    }

    /// Child nodes of this node (empty slice for leaf nodes).
    pub fn child_nodes(&self) -> &[AggNode<T>] {
        match &self.children {
            AggChildren::Nodes(n) => n,
            AggChildren::Leaf(_) => &[],
        }
    }
}

/// A COUNT-aggregate R-tree (Tao & Papadias, TKDE 2004), built statically
/// with STR packing. The Best-First TkPLQ algorithm builds one of these per
/// query over the moving objects' possible-semantic-location MBRs (`RC`)
/// and joins it against the query S-location tree.
///
/// The tree intentionally exposes its node structure ([`AggTree::root`],
/// [`AggNode::child_nodes`], [`AggNode::entries`]): Algorithm 4 descends
/// both trees level by level and needs direct access to node MBRs and
/// counts rather than a closed query API.
#[derive(Debug, Clone)]
pub struct AggTree<T> {
    root: Option<AggNode<T>>,
    size: usize,
    fanout: usize,
}

const DEFAULT_FANOUT: usize = 8;

impl<T> AggTree<T> {
    /// Builds the tree from `(mbr, data)` pairs with the default fanout.
    pub fn build(items: Vec<(Rect, T)>) -> Self {
        Self::build_with_fanout(items, DEFAULT_FANOUT)
    }

    /// Builds the tree with an explicit maximum fanout (>= 2).
    pub fn build_with_fanout(items: Vec<(Rect, T)>, fanout: usize) -> Self {
        assert!(fanout >= 2, "aggregate R-tree fanout must be at least 2");
        let size = items.len();
        if size == 0 {
            return AggTree {
                root: None,
                size,
                fanout,
            };
        }
        let mut entries: Vec<AggEntry<T>> = items
            .into_iter()
            .map(|(mbr, data)| AggEntry { mbr, data })
            .collect();
        let leaves = pack_leaves(&mut entries, fanout);
        let root = pack_upward(leaves, fanout);
        AggTree {
            root: Some(root),
            size,
            fanout,
        }
    }

    /// The root node, `None` when the tree is empty.
    pub fn root(&self) -> Option<&AggNode<T>> {
        self.root.as_ref()
    }

    /// Number of leaf entries.
    pub fn len(&self) -> usize {
        self.size
    }

    /// Whether the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// Node fanout the tree was built with.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// COUNT aggregate over a rectangle: number of leaf entries whose MBR
    /// intersects `query`. Internal node counts let fully-covered subtrees
    /// be answered without descending — the classic aggregate R-tree
    /// optimization.
    pub fn count_intersecting(&self, query: &Rect) -> usize {
        fn rec<T>(node: &AggNode<T>, query: &Rect) -> usize {
            if !node.mbr.intersects(query) {
                return 0;
            }
            if query.contains_rect(&node.mbr) {
                return node.count;
            }
            match &node.children {
                AggChildren::Leaf(entries) => {
                    entries.iter().filter(|e| e.mbr.intersects(query)).count()
                }
                AggChildren::Nodes(nodes) => nodes.iter().map(|n| rec(n, query)).sum(),
            }
        }
        self.root.as_ref().map_or(0, |r| rec(r, query))
    }

    /// Collects references to all entries whose MBR intersects `query`.
    pub fn query(&self, query: &Rect) -> Vec<&AggEntry<T>> {
        fn rec<'a, T>(node: &'a AggNode<T>, query: &Rect, out: &mut Vec<&'a AggEntry<T>>) {
            if !node.mbr.intersects(query) {
                return;
            }
            match &node.children {
                AggChildren::Leaf(entries) => {
                    out.extend(entries.iter().filter(|e| e.mbr.intersects(query)));
                }
                AggChildren::Nodes(nodes) => {
                    for n in nodes {
                        rec(n, query, out);
                    }
                }
            }
        }
        let mut out = Vec::new();
        if let Some(root) = &self.root {
            rec(root, query, &mut out);
        }
        out
    }

    /// Height of the tree (0 when empty).
    pub fn height(&self) -> usize {
        let mut h = 0;
        let mut node = self.root.as_ref();
        while let Some(n) = node {
            h += 1;
            node = n.child_nodes().first();
        }
        h
    }
}

fn pack_leaves<T>(entries: &mut Vec<AggEntry<T>>, fanout: usize) -> Vec<AggNode<T>> {
    let n = entries.len();
    let leaf_count = n.div_ceil(fanout);
    let slab_count = (leaf_count as f64).sqrt().ceil() as usize;
    let slab_size = n.div_ceil(slab_count);

    entries.sort_by(|a, b| a.mbr.center().x.total_cmp(&b.mbr.center().x));
    let mut leaves = Vec::with_capacity(leaf_count);
    let mut rest = std::mem::take(entries);
    while !rest.is_empty() {
        let take = slab_size.min(rest.len());
        let mut slab: Vec<AggEntry<T>> = rest.drain(..take).collect();
        slab.sort_by(|a, b| a.mbr.center().y.total_cmp(&b.mbr.center().y));
        while !slab.is_empty() {
            let take = fanout.min(slab.len());
            let leaf_entries: Vec<AggEntry<T>> = slab.drain(..take).collect();
            let mbr = Rect::union_all(leaf_entries.iter().map(|e| e.mbr)).unwrap();
            leaves.push(AggNode {
                mbr,
                count: leaf_entries.len(),
                children: AggChildren::Leaf(leaf_entries),
            });
        }
    }
    leaves
}

fn pack_upward<T>(mut level: Vec<AggNode<T>>, fanout: usize) -> AggNode<T> {
    while level.len() > 1 {
        level.sort_by(|a, b| a.mbr.center().x.total_cmp(&b.mbr.center().x));
        let n = level.len();
        let parent_count = n.div_ceil(fanout);
        let slab_count = (parent_count as f64).sqrt().ceil() as usize;
        let slab_size = n.div_ceil(slab_count);
        let mut next = Vec::with_capacity(parent_count);
        let mut rest = std::mem::take(&mut level);
        while !rest.is_empty() {
            let take = slab_size.min(rest.len());
            let mut slab: Vec<AggNode<T>> = rest.drain(..take).collect();
            slab.sort_by(|a, b| a.mbr.center().y.total_cmp(&b.mbr.center().y));
            while !slab.is_empty() {
                let take = fanout.min(slab.len());
                let children: Vec<AggNode<T>> = slab.drain(..take).collect();
                let mbr = Rect::union_all(children.iter().map(|c| c.mbr)).unwrap();
                let count = children.iter().map(|c| c.count).sum();
                next.push(AggNode {
                    mbr,
                    count,
                    children: AggChildren::Nodes(children),
                });
            }
        }
        level = next;
    }
    level.pop().expect("pack_upward requires at least one node")
}

#[cfg(test)]
mod tests {
    use super::*;
    use indoor_geom::Point;
    use proptest::prelude::*;

    fn grid_items(nx: usize, ny: usize) -> Vec<(Rect, usize)> {
        let mut v = Vec::new();
        for i in 0..nx {
            for j in 0..ny {
                v.push((Rect::point(Point::new(i as f64, j as f64)), i * ny + j));
            }
        }
        v
    }

    #[test]
    fn empty_tree_counts_zero() {
        let t: AggTree<u32> = AggTree::build(vec![]);
        assert!(t.is_empty());
        assert_eq!(
            t.count_intersecting(&Rect::from_coords(0.0, 0.0, 9.0, 9.0)),
            0
        );
        assert!(t.root().is_none());
    }

    #[test]
    fn root_count_equals_size() {
        let t = AggTree::build(grid_items(13, 7));
        assert_eq!(t.len(), 91);
        assert_eq!(t.root().unwrap().count, 91);
    }

    #[test]
    fn node_counts_are_consistent() {
        let t = AggTree::build_with_fanout(grid_items(20, 20), 4);
        fn check<T>(node: &AggNode<T>) -> usize {
            let computed = match &node.children {
                AggChildren::Leaf(e) => e.len(),
                AggChildren::Nodes(ns) => ns.iter().map(check).sum(),
            };
            assert_eq!(node.count, computed);
            computed
        }
        assert_eq!(check(t.root().unwrap()), 400);
    }

    #[test]
    fn mbrs_contain_children() {
        let t = AggTree::build_with_fanout(grid_items(15, 15), 4);
        fn check<T>(node: &AggNode<T>) {
            match &node.children {
                AggChildren::Leaf(entries) => {
                    for e in entries {
                        assert!(node.mbr.contains_rect(&e.mbr));
                    }
                }
                AggChildren::Nodes(ns) => {
                    for n in ns {
                        assert!(node.mbr.contains_rect(&n.mbr));
                        check(n);
                    }
                }
            }
        }
        check(t.root().unwrap());
    }

    #[test]
    fn count_matches_query_len() {
        let t = AggTree::build(grid_items(10, 10));
        let q = Rect::from_coords(2.5, 2.5, 7.5, 7.5);
        assert_eq!(t.count_intersecting(&q), t.query(&q).len());
        assert_eq!(t.count_intersecting(&q), 25);
    }

    #[test]
    fn covered_subtree_shortcut_counts_correctly() {
        let t = AggTree::build_with_fanout(grid_items(30, 30), 4);
        let everything = Rect::from_coords(-1.0, -1.0, 31.0, 31.0);
        assert_eq!(t.count_intersecting(&everything), 900);
    }

    #[test]
    fn height_reported() {
        let t = AggTree::build_with_fanout(grid_items(16, 16), 4);
        // 256 entries, fanout 4 → 64 leaves → 16 → 4 → 1: height 4.
        assert_eq!(t.height(), 4);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn count_equals_scan(
            points in proptest::collection::vec((0.0..40.0f64, 0.0..40.0f64), 1..100),
            qx in 0.0..40.0f64, qy in 0.0..40.0f64, qw in 0.0..20.0f64, qh in 0.0..20.0f64,
        ) {
            let items: Vec<(Rect, usize)> = points
                .iter()
                .enumerate()
                .map(|(i, &(x, y))| (Rect::point(Point::new(x, y)), i))
                .collect();
            let t = AggTree::build_with_fanout(items, 4);
            let q = Rect::from_coords(qx, qy, qx + qw, qy + qh);
            let want = points
                .iter()
                .filter(|&&(x, y)| q.contains_point(Point::new(x, y)))
                .count();
            prop_assert_eq!(t.count_intersecting(&q), want);
        }
    }
}
