//! The paper's worked examples, verified end to end through the public
//! API of every crate: Figure 1 topology, Figure 3 matrix entries,
//! Figure 4 reduction trace, Examples 2–4 presence/flow numbers, and the
//! cross-method agreement claim of §5.1.

use indoor_iupt::fixtures::{paper_table2, O1, O2, O3};
use indoor_iupt::{ObjectId, SampleSet, TimeInterval, Timestamp};
use indoor_model::fixtures::paper_figure1;
use popflow_core::{
    best_first, flow, naive, nested_loop, presence::object_presence, reduction, FlowConfig,
    QuerySet, TkPlQuery,
};

fn interval() -> TimeInterval {
    TimeInterval::new(Timestamp::from_secs(1), Timestamp::from_secs(8))
}

fn worked_example_cfg() -> FlowConfig {
    // Examples 2–4 use raw sequences and the full-product normalization
    // (DESIGN.md §2.2).
    FlowConfig::default()
        .without_reduction()
        .with_full_product_normalization()
}

fn sets_of(oid: ObjectId) -> Vec<SampleSet> {
    let mut iupt = paper_table2();
    iupt.sequence_of(oid, interval())
        .records
        .iter()
        .map(|r| r.samples.clone())
        .collect()
}

#[test]
fn figure1_topology() {
    let fig = paper_figure1();
    let st = fig.space.stats();
    assert_eq!((st.partitions, st.plocs, st.slocs, st.cells), (6, 9, 6, 5));
    // p4 ≡ p9 and p6 ≡ p8 (§3.1.2).
    let m = fig.space.matrix();
    assert!(m.equivalent(fig.p[3], fig.p[8]));
    assert!(m.equivalent(fig.p[5], fig.p[7]));
    // MIL[p3, p4] = ∅; MIL[p4, p9] = {c1, c6} (Figure 3).
    assert!(m.cells_between(fig.p[2], fig.p[3]).is_empty());
    assert_eq!(m.cells_between(fig.p[3], fig.p[8]).len(), 2);
}

#[test]
fn example2_and_3_presences() {
    let fig = paper_figure1();
    let cfg = worked_example_cfg();
    let cases = [
        (O3, fig.r[5], 0.12), // Example 2
        (O1, fig.r[0], 0.5),  // Example 3
        (O1, fig.r[5], 1.0),
        (O2, fig.r[0], 0.0),
        (O2, fig.r[5], 0.85),
        (O3, fig.r[0], 0.0),
    ];
    for (oid, q, want) in cases {
        let phi = object_presence(&fig.space, &sets_of(oid), q, &cfg).unwrap();
        assert!(
            (phi - want).abs() < 1e-9,
            "Φ({q}, {oid}) = {phi}, want {want}"
        );
    }
}

#[test]
fn example3_flows() {
    let fig = paper_figure1();
    let mut iupt = paper_table2();
    let cfg = worked_example_cfg();
    let r6 = flow(&fig.space, &mut iupt, fig.r[5], interval(), &cfg).unwrap();
    assert!((r6.flow - 1.97).abs() < 1e-9, "Θ(r6) = {}", r6.flow);
    let r1 = flow(&fig.space, &mut iupt, fig.r[0], interval(), &cfg).unwrap();
    assert!((r1.flow - 0.5).abs() < 1e-9, "Θ(r1) = {}", r1.flow);
}

#[test]
fn example4_top1_query_all_algorithms() {
    let fig = paper_figure1();
    let cfg = worked_example_cfg();
    let query = TkPlQuery::new(1, QuerySet::new(vec![fig.r[0], fig.r[5]]), interval());
    type Algo = fn(
        &indoor_model::IndoorSpace,
        &mut indoor_iupt::Iupt,
        &TkPlQuery,
        &FlowConfig,
    ) -> Result<popflow_core::QueryOutcome, popflow_core::FlowError>;
    let algos: [(&str, Algo); 3] = [
        ("naive", naive),
        ("nested_loop", nested_loop),
        ("best_first", best_first),
    ];
    for (name, f) in algos {
        let mut iupt = paper_table2();
        let out = f(&fig.space, &mut iupt, &query, &cfg).unwrap();
        assert_eq!(out.ranking[0].sloc, fig.r[5], "{name} returns r6");
        assert!((out.ranking[0].flow - 1.97).abs() < 1e-9, "{name}");
    }
}

#[test]
fn figure4_reduction_trace() {
    let fig = paper_figure1();
    let sets = sets_of(O2);
    let reduced = reduction::scan_sequence(&fig.space, sets.iter(), true).unwrap();
    // 4 raw sets → 3 after inter-merge; |P| bound 36 → 8.
    assert_eq!(reduced.sets.len(), 3);
    assert_eq!(reduced.max_paths(), 8);
    // Merged X̄3 probabilities: p5 ↦ 0.25, p6 ↦ 0.75.
    let merged = &reduced.sets[2];
    assert!((merged.prob_of(fig.p[4]) - 0.25).abs() < 1e-12);
    assert!((merged.prob_of(fig.p[5]) - 0.75).abs() < 1e-12);
}

#[test]
fn psl_pruning_matches_paper_narrative() {
    // §3.2: o3's PSLs are {r3, r4, r6}; a query on {r1, r2, r5} prunes it.
    let fig = paper_figure1();
    let sets = sets_of(O3);
    let q = QuerySet::new(vec![fig.r[0], fig.r[1], fig.r[4]]);
    assert!(
        reduction::reduce_for_query(&fig.space, sets.iter(), &q, true)
            .unwrap()
            .is_none()
    );
}
