//! popflow-obs — dependency-free telemetry for the popflow workspace.
//!
//! The crate provides exactly the observability surface the serving
//! and batch layers need, with no external dependencies (std only, in
//! the vendored-shim spirit of the rest of the workspace):
//!
//! - [`MetricsRegistry`] — named counters, gauges, and histograms.
//!   Handles are resolved once by name (cold, takes a lock) and then
//!   recorded through lock-free (relaxed atomics, no allocation), so
//!   instrumentation is cheap enough to leave on in production.
//! - [`Histogram`] — fixed-size log-bucketed atomic histogram: values
//!   `0..=15` are exact, larger values land in one of 16 sub-buckets
//!   per power-of-two octave (≤ 6.25% relative error over the full
//!   `u64` range). Snapshots are mergeable and expose deterministic
//!   nearest-rank quantiles (p50/p90/p99/p999) plus the exact max.
//! - [`Timer`] / [`PhaseGuard`] — a span API for recording scoped
//!   durations (nanoseconds) into histograms, manually or RAII-style.
//! - [`Snapshot`] — a point-in-time export of the whole registry with
//!   JSON round-trip ([`Snapshot::to_json`] / [`Snapshot::from_json`]),
//!   Prometheus text exposition ([`Snapshot::to_prometheus`]), and
//!   per-interval deltas ([`Snapshot::diff`]).
//!
//! Consumers agree on metric names by convention; the serving engine's
//! names live in `popflow_serve::metric_names`.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod histogram;
mod registry;
mod snapshot;

pub use histogram::{Histogram, HistogramSnapshot};
pub use registry::{Counter, Gauge, MetricsRegistry, PhaseGuard, Timer};
pub use snapshot::Snapshot;
