use popflow_core::{nested_loop, FlowConfig, PresenceEngine, TkPlQuery};
use popflow_eval::{kendall_tau, Lab};

fn main() {
    let mut lab = Lab::real_analog();
    let qs = lab.query_fraction(1.0, 1);
    let iv = lab.random_window(30, 99);
    let query = TkPlQuery::new(qs.len(), qs.clone(), iv);
    let gt = lab.world.ground_truth_topk(iv, qs.slocs(), qs.len());
    let cfg = FlowConfig {
        engine: PresenceEngine::Hybrid,
        ..FlowConfig::default()
    };
    let (space, iupt) = lab.space_and_iupt();
    let out = nested_loop(space, iupt, &query, &cfg).unwrap();
    println!(
        "{:<12} {:>8}   ||   {:<12} {:>8}",
        "flow-rank", "value", "gt-rank", "count"
    );
    for (a, b) in out.ranking.iter().zip(gt.iter()) {
        println!(
            "{:<12} {:>8.2}   ||   {:<12} {:>8.0}",
            space.sloc(a.sloc).name,
            a.flow,
            space.sloc(b.0).name,
            b.1
        );
    }
    let tau_full = kendall_tau(
        &out.topk_slocs(),
        &gt.iter().map(|x| x.0).collect::<Vec<_>>(),
    );
    println!("full-ranking tau = {tau_full:.3}");
}
