use indoor_model::SLocId;

/// The query S-location set `Q` of a TkPLQ, held sorted for O(log n)
/// membership tests and linear-time intersection with PSL lists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuerySet {
    slocs: Vec<SLocId>,
}

impl QuerySet {
    /// Builds the set, sorting and deduplicating.
    pub fn new(mut slocs: Vec<SLocId>) -> Self {
        slocs.sort_unstable();
        slocs.dedup();
        QuerySet { slocs }
    }

    /// Members in ascending id order.
    pub fn slocs(&self) -> &[SLocId] {
        &self.slocs
    }

    /// Number of query locations.
    pub fn len(&self) -> usize {
        self.slocs.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.slocs.is_empty()
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, s: SLocId) -> bool {
        self.slocs.binary_search(&s).is_ok()
    }

    /// Index of `s` within the sorted member list (used to key per-query
    /// bitsets in the nested-loop algorithm).
    #[inline]
    pub fn index_of(&self, s: SLocId) -> Option<usize> {
        self.slocs.binary_search(&s).ok()
    }

    /// Whether any element of the **sorted** slice intersects the set —
    /// the `psls ∩ Q ≠ ∅` test of Algorithm 1 line 13.
    pub fn intersects_sorted(&self, sorted: &[SLocId]) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.slocs.len() && j < sorted.len() {
            match self.slocs[i].cmp(&sorted[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }

    /// Intersection with a **sorted** slice, in ascending order.
    pub fn intersection_sorted(&self, sorted: &[SLocId]) -> Vec<SLocId> {
        intersect_sorted(&self.slocs, sorted)
    }
}

/// Intersection of two **sorted** `SLocId` slices, ascending — the
/// free-standing counterpart of [`QuerySet::intersection_sorted`],
/// shared by the per-location contribution kernel and the serve shard's
/// lazy evaluation.
pub fn intersect_sorted(a: &[SLocId], b: &[SLocId]) -> Vec<SLocId> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

impl From<Vec<SLocId>> for QuerySet {
    fn from(v: Vec<SLocId>) -> Self {
        QuerySet::new(v)
    }
}

impl FromIterator<SLocId> for QuerySet {
    fn from_iter<I: IntoIterator<Item = SLocId>>(iter: I) -> Self {
        QuerySet::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u32) -> SLocId {
        SLocId(i)
    }

    #[test]
    fn sorts_and_dedups() {
        let q = QuerySet::new(vec![s(3), s(1), s(3), s(2)]);
        assert_eq!(q.slocs(), &[s(1), s(2), s(3)]);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn membership_and_index() {
        let q = QuerySet::new(vec![s(1), s(5), s(9)]);
        assert!(q.contains(s(5)));
        assert!(!q.contains(s(4)));
        assert_eq!(q.index_of(s(9)), Some(2));
        assert_eq!(q.index_of(s(2)), None);
    }

    #[test]
    fn sorted_intersection() {
        let q = QuerySet::new(vec![s(1), s(4), s(7)]);
        assert!(q.intersects_sorted(&[s(0), s(4)]));
        assert!(!q.intersects_sorted(&[s(2), s(5)]));
        assert_eq!(
            q.intersection_sorted(&[s(0), s(4), s(7), s(8)]),
            vec![s(4), s(7)]
        );
        assert!(q.intersection_sorted(&[]).is_empty());
    }

    #[test]
    fn empty_set() {
        let q = QuerySet::new(vec![]);
        assert!(q.is_empty());
        assert!(!q.intersects_sorted(&[s(1)]));
    }
}
