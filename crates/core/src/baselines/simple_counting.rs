//! The Simple Counting baselines SC and SC-ρ (§5.1).
//!
//! SC keeps, per positioning record, only the (first) sample with the
//! highest probability; SC-ρ keeps every sample with probability ≥ ρ. A
//! kept sample increments the flow of every query S-location containing
//! its P-location — and an object is counted at most once per S-location
//! over the whole window, "to be consistent with our indoor flow
//! definition".

use std::collections::HashSet;

use indoor_iupt::{Iupt, ObjectId};
use indoor_model::{IndoorSpace, SLocId};

use crate::query::{rank_topk, QueryOutcome, SearchStats, TkPlQuery};

/// The SC baseline: argmax sample per record.
pub fn simple_counting(space: &IndoorSpace, iupt: &mut Iupt, query: &TkPlQuery) -> QueryOutcome {
    counting_impl(space, iupt, query, None)
}

/// The SC-ρ baseline: all samples with probability at least `rho`.
pub fn simple_counting_rho(
    space: &IndoorSpace,
    iupt: &mut Iupt,
    query: &TkPlQuery,
    rho: f64,
) -> QueryOutcome {
    counting_impl(space, iupt, query, Some(rho))
}

fn counting_impl(
    space: &IndoorSpace,
    iupt: &mut Iupt,
    query: &TkPlQuery,
    rho: Option<f64>,
) -> QueryOutcome {
    // (object, S-location) pairs already counted.
    let mut counted: HashSet<(ObjectId, SLocId)> = HashSet::new();
    let mut scores: Vec<(SLocId, f64)> =
        query.query_set.slocs().iter().map(|&s| (s, 0.0)).collect();
    let index_of = |s: SLocId| query.query_set.index_of(s);

    let sequences = iupt.sequences_in(query.interval);
    let objects_total = sequences.len();
    let mut touched: HashSet<ObjectId> = HashSet::new();

    for seq in &sequences {
        for record in &seq.records {
            match rho {
                None => {
                    let s = record.samples.argmax();
                    count_sample(
                        space,
                        s.loc,
                        seq.oid,
                        &mut counted,
                        &mut scores,
                        &index_of,
                        &mut touched,
                    );
                }
                Some(rho) => {
                    for s in record.samples.above_threshold(rho) {
                        count_sample(
                            space,
                            s.loc,
                            seq.oid,
                            &mut counted,
                            &mut scores,
                            &index_of,
                            &mut touched,
                        );
                    }
                }
            }
        }
    }

    QueryOutcome {
        ranking: rank_topk(scores, query.k),
        stats: SearchStats {
            objects_total,
            // SC has no pruning concept; every record is inspected.
            objects_computed: objects_total,
            dp_fallback_objects: 0,
        },
    }
}

fn count_sample(
    space: &IndoorSpace,
    loc: indoor_model::PLocId,
    oid: ObjectId,
    counted: &mut HashSet<(ObjectId, SLocId)>,
    scores: &mut [(SLocId, f64)],
    index_of: &impl Fn(SLocId) -> Option<usize>,
    touched: &mut HashSet<ObjectId>,
) {
    // A P-location may be contained in multiple S-locations (e.g. a door
    // point on a shared wall); SC deliberately counts all of them.
    for &sloc in space.slocs_of_ploc(loc) {
        if let Some(i) = index_of(sloc) {
            if counted.insert((oid, sloc)) {
                scores[i].1 += 1.0;
                touched.insert(oid);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query_set::QuerySet;
    use indoor_iupt::fixtures::paper_table2;
    use indoor_iupt::{TimeInterval, Timestamp};
    use indoor_model::fixtures::paper_figure1;

    fn interval() -> TimeInterval {
        TimeInterval::new(Timestamp::from_secs(1), Timestamp::from_secs(8))
    }

    #[test]
    fn sc_counts_argmax_samples_once_per_location() {
        let fig = paper_figure1();
        let mut iupt = paper_table2();
        let query = TkPlQuery::new(6, QuerySet::new(fig.r.to_vec()), interval());
        let out = simple_counting(&fig.space, &mut iupt, &query);
        assert_eq!(out.ranking.len(), 6);
        // Flows are whole numbers (counts).
        for r in &out.ranking {
            assert!((r.flow - r.flow.round()).abs() < 1e-12);
        }
        // r6 accumulates counts from the hallway door/presence P-locations
        // (p4, p9, p8 all count toward r6 for o1 alone).
        let r6 = out.ranking.iter().find(|r| r.sloc == fig.r[5]).unwrap();
        assert!(r6.flow >= 2.0, "r6 count {}", r6.flow);
    }

    #[test]
    fn sc_rho_includes_more_samples_than_sc() {
        let fig = paper_figure1();
        let query = TkPlQuery::new(6, QuerySet::new(fig.r.to_vec()), interval());
        let mut i1 = paper_table2();
        let sc = simple_counting(&fig.space, &mut i1, &query);
        let mut i2 = paper_table2();
        let sc_rho = simple_counting_rho(&fig.space, &mut i2, &query, 0.25);
        let total_sc: f64 = sc.ranking.iter().map(|r| r.flow).sum();
        let total_rho: f64 = sc_rho.ranking.iter().map(|r| r.flow).sum();
        assert!(total_rho >= total_sc, "{total_rho} < {total_sc}");
    }

    #[test]
    fn object_counted_once_per_sloc() {
        // o1 visits r6-related P-locations at t1, t3, t4 — but contributes
        // at most 1 to r6.
        let fig = paper_figure1();
        let mut iupt = paper_table2();
        let query = TkPlQuery::new(1, QuerySet::new(vec![fig.r[5]]), interval());
        let out = simple_counting(&fig.space, &mut iupt, &query);
        assert!(out.ranking[0].flow <= 3.0); // at most one per object
    }

    #[test]
    fn rho_one_counts_only_certain_samples() {
        let fig = paper_figure1();
        let mut iupt = paper_table2();
        let query = TkPlQuery::new(6, QuerySet::new(fig.r.to_vec()), interval());
        let out = simple_counting_rho(&fig.space, &mut iupt, &query, 1.0);
        // Only the certain records (o1's three, o3's last) qualify.
        let total: f64 = out.ranking.iter().map(|r| r.flow).sum();
        assert!(total > 0.0);
        assert!(total <= 8.0);
    }
}
