use indoor_geom::Rect;

/// Default maximum node fanout; chosen small because the trees indexed here
/// (hundreds of S-locations, thousands of object MBRs) are modest and a
/// small fanout keeps the Best-First heap granular.
const DEFAULT_MAX_ENTRIES: usize = 8;

/// A data entry: an MBR plus a payload.
#[derive(Debug, Clone)]
pub struct Entry<T> {
    /// Bounding rectangle of the entry.
    pub mbr: Rect,
    /// The indexed payload.
    pub data: T,
}

#[derive(Debug, Clone)]
enum Node<T> {
    Leaf { mbr: Rect, entries: Vec<Entry<T>> },
    Internal { mbr: Rect, children: Vec<Node<T>> },
}

impl<T> Node<T> {
    fn mbr(&self) -> Rect {
        match self {
            Node::Leaf { mbr, .. } | Node::Internal { mbr, .. } => *mbr,
        }
    }

    fn recompute_mbr(&mut self) {
        match self {
            Node::Leaf { mbr, entries } => {
                *mbr = Rect::union_all(entries.iter().map(|e| e.mbr))
                    .unwrap_or(Rect::from_coords(0.0, 0.0, 0.0, 0.0));
            }
            Node::Internal { mbr, children } => {
                *mbr = Rect::union_all(children.iter().map(|c| c.mbr()))
                    .unwrap_or(Rect::from_coords(0.0, 0.0, 0.0, 0.0));
            }
        }
    }
}

/// An R-tree over rectangles with payloads of type `T`.
///
/// Supports STR (Sort-Tile-Recursive) bulk loading for static data sets and
/// Guttman-style insertion with quadratic splits for incremental updates.
#[derive(Debug, Clone)]
pub struct RTree<T> {
    root: Option<Node<T>>,
    size: usize,
    max_entries: usize,
}

impl<T> Default for RTree<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> RTree<T> {
    /// Creates an empty tree with the default fanout.
    pub fn new() -> Self {
        Self::with_fanout(DEFAULT_MAX_ENTRIES)
    }

    /// Creates an empty tree with maximum node fanout `max_entries` (>= 2).
    pub fn with_fanout(max_entries: usize) -> Self {
        assert!(max_entries >= 2, "R-tree fanout must be at least 2");
        RTree {
            root: None,
            size: 0,
            max_entries,
        }
    }

    /// Bulk-loads the tree from `entries` using the STR packing algorithm.
    /// Replaces any existing content.
    pub fn bulk_load(entries: Vec<Entry<T>>) -> Self {
        Self::bulk_load_with_fanout(entries, DEFAULT_MAX_ENTRIES)
    }

    /// [`RTree::bulk_load`] with an explicit fanout.
    pub fn bulk_load_with_fanout(mut entries: Vec<Entry<T>>, max_entries: usize) -> Self {
        assert!(max_entries >= 2, "R-tree fanout must be at least 2");
        let size = entries.len();
        if size == 0 {
            return Self::with_fanout(max_entries);
        }
        let leaves = str_pack_leaves(&mut entries, max_entries);
        let root = build_upward(leaves, max_entries);
        RTree {
            root: Some(root),
            size,
            max_entries,
        }
    }

    /// Number of data entries.
    pub fn len(&self) -> usize {
        self.size
    }

    /// Whether the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// Height of the tree (0 for an empty tree, 1 for a single leaf root).
    pub fn height(&self) -> usize {
        let mut h = 0;
        let mut node = self.root.as_ref();
        while let Some(n) = node {
            h += 1;
            node = match n {
                Node::Internal { children, .. } => children.first(),
                Node::Leaf { .. } => None,
            };
        }
        h
    }

    /// MBR of the whole tree, `None` when empty.
    pub fn bounds(&self) -> Option<Rect> {
        self.root.as_ref().map(|n| n.mbr())
    }

    /// Inserts an entry, splitting nodes as needed.
    pub fn insert(&mut self, mbr: Rect, data: T) {
        self.size += 1;
        let max = self.max_entries;
        match self.root.take() {
            None => {
                self.root = Some(Node::Leaf {
                    mbr,
                    entries: vec![Entry { mbr, data }],
                });
            }
            Some(mut root) => {
                if let Some(sibling) = insert_rec(&mut root, Entry { mbr, data }, max) {
                    // Root split: grow the tree by one level.
                    let new_mbr = root.mbr().union(&sibling.mbr());
                    self.root = Some(Node::Internal {
                        mbr: new_mbr,
                        children: vec![root, sibling],
                    });
                } else {
                    self.root = Some(root);
                }
            }
        }
    }

    /// Collects references to all entries whose MBR intersects `query`.
    pub fn query(&self, query: &Rect) -> Vec<&Entry<T>> {
        let mut out = Vec::new();
        if let Some(root) = &self.root {
            query_rec(root, query, &mut out);
        }
        out
    }

    /// Visits every entry whose MBR intersects `query`.
    pub fn for_each_intersecting<'a, F: FnMut(&'a Entry<T>)>(&'a self, query: &Rect, mut f: F) {
        if let Some(root) = &self.root {
            for_each_rec(root, query, &mut f);
        }
    }

    /// Iterates over all entries (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = &Entry<T>> {
        let mut stack: Vec<&Node<T>> = self.root.iter().collect();
        std::iter::from_fn(move || loop {
            let node = stack.pop()?;
            match node {
                Node::Leaf { entries, .. } => {
                    // Yield the whole leaf slice; `flatten` below unpacks it.
                    return Some(entries);
                }
                Node::Internal { children, .. } => {
                    stack.extend(children.iter());
                }
            }
        })
        .flatten()
    }
}

fn insert_rec<T>(node: &mut Node<T>, entry: Entry<T>, max: usize) -> Option<Node<T>> {
    match node {
        Node::Leaf { mbr, entries } => {
            entries.push(entry);
            if entries.len() <= max {
                mbr.expand(&entries.last().unwrap().mbr);
                None
            } else {
                let (a, b) = quadratic_split_entries(std::mem::take(entries), max);
                let (mbr_b, entries_b) = b;
                let (mbr_a, entries_a) = a;
                *entries = entries_a;
                *mbr = mbr_a;
                Some(Node::Leaf {
                    mbr: mbr_b,
                    entries: entries_b,
                })
            }
        }
        Node::Internal { mbr, children } => {
            let idx = choose_subtree(children, &entry.mbr);
            let split = insert_rec(&mut children[idx], entry, max);
            if let Some(sibling) = split {
                children.push(sibling);
            }
            if children.len() <= max {
                node_recompute(node);
                None
            } else {
                let (a, b) = quadratic_split_nodes(std::mem::take(children), max);
                let (mbr_b, children_b) = b;
                let (mbr_a, children_a) = a;
                *children = children_a;
                *mbr = mbr_a;
                Some(Node::Internal {
                    mbr: mbr_b,
                    children: children_b,
                })
            }
        }
    }
}

fn node_recompute<T>(node: &mut Node<T>) {
    node.recompute_mbr();
}

/// Guttman's ChooseLeaf criterion: least enlargement, ties by smaller area.
fn choose_subtree<T>(children: &[Node<T>], mbr: &Rect) -> usize {
    let mut best = 0;
    let mut best_enlargement = f64::INFINITY;
    let mut best_area = f64::INFINITY;
    for (i, child) in children.iter().enumerate() {
        let cmbr = child.mbr();
        let enlargement = cmbr.enlargement(mbr);
        let area = cmbr.area();
        if enlargement < best_enlargement || (enlargement == best_enlargement && area < best_area) {
            best = i;
            best_enlargement = enlargement;
            best_area = area;
        }
    }
    best
}

/// A split result: each group's MBR plus its members.
type SplitGroups<I> = ((Rect, Vec<I>), (Rect, Vec<I>));

/// Quadratic split on leaf entries. Returns the two groups with their MBRs.
fn quadratic_split_entries<T>(items: Vec<Entry<T>>, max: usize) -> SplitGroups<Entry<T>> {
    let rects: Vec<Rect> = items.iter().map(|e| e.mbr).collect();
    let (ga, gb) = quadratic_partition(&rects, max);
    distribute(items, ga, gb)
}

/// Quadratic split on child nodes.
fn quadratic_split_nodes<T>(items: Vec<Node<T>>, max: usize) -> SplitGroups<Node<T>> {
    let rects: Vec<Rect> = items.iter().map(|n| n.mbr()).collect();
    let (ga, gb) = quadratic_partition(&rects, max);
    let ((ra, va), (rb, vb)) = distribute(items, ga, gb);
    ((ra, va), (rb, vb))
}

fn distribute<I>(items: Vec<I>, group_a: Vec<usize>, group_b: Vec<usize>) -> SplitGroups<I>
where
    I: HasMbr,
{
    let mut slots: Vec<Option<I>> = items.into_iter().map(Some).collect();
    let take = |slots: &mut Vec<Option<I>>, idxs: &[usize]| -> (Rect, Vec<I>) {
        let group: Vec<I> = idxs.iter().map(|&i| slots[i].take().unwrap()).collect();
        let mbr = Rect::union_all(group.iter().map(|g| g.mbr_of())).unwrap();
        (mbr, group)
    };
    let a = take(&mut slots, &group_a);
    let b = take(&mut slots, &group_b);
    (a, b)
}

/// Minimal trait so [`distribute`] works for both entries and nodes.
trait HasMbr {
    fn mbr_of(&self) -> Rect;
}

impl<T> HasMbr for Entry<T> {
    fn mbr_of(&self) -> Rect {
        self.mbr
    }
}

impl<T> HasMbr for Node<T> {
    fn mbr_of(&self) -> Rect {
        self.mbr()
    }
}

/// Guttman's quadratic partition over a set of rectangles: pick the pair
/// wasting the most area as seeds, then assign the rest by preference,
/// honoring the minimum fill `max / 2`.
fn quadratic_partition(rects: &[Rect], max: usize) -> (Vec<usize>, Vec<usize>) {
    let n = rects.len();
    debug_assert!(n > max);
    let min_fill = max.div_ceil(2);

    // Seed selection: maximize dead space d = area(union) − a1 − a2.
    let (mut seed_a, mut seed_b, mut worst) = (0usize, 1usize, f64::NEG_INFINITY);
    for i in 0..n {
        for j in (i + 1)..n {
            let d = rects[i].union(&rects[j]).area() - rects[i].area() - rects[j].area();
            if d > worst {
                worst = d;
                seed_a = i;
                seed_b = j;
            }
        }
    }

    let mut group_a = vec![seed_a];
    let mut group_b = vec![seed_b];
    let mut mbr_a = rects[seed_a];
    let mut mbr_b = rects[seed_b];
    let mut remaining: Vec<usize> = (0..n).filter(|&i| i != seed_a && i != seed_b).collect();

    while !remaining.is_empty() {
        // Force-assign to honor minimum fill.
        if group_a.len() + remaining.len() == min_fill {
            for i in remaining.drain(..) {
                mbr_a.expand(&rects[i]);
                group_a.push(i);
            }
            break;
        }
        if group_b.len() + remaining.len() == min_fill {
            for i in remaining.drain(..) {
                mbr_b.expand(&rects[i]);
                group_b.push(i);
            }
            break;
        }
        // PickNext: entry with the greatest preference difference.
        let (pos, _) = remaining
            .iter()
            .enumerate()
            .map(|(pos, &i)| {
                let da = mbr_a.enlargement(&rects[i]);
                let db = mbr_b.enlargement(&rects[i]);
                (pos, (da - db).abs())
            })
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        let i = remaining.swap_remove(pos);
        let da = mbr_a.enlargement(&rects[i]);
        let db = mbr_b.enlargement(&rects[i]);
        let to_a = match da.total_cmp(&db) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => mbr_a.area() <= mbr_b.area(),
        };
        if to_a {
            mbr_a.expand(&rects[i]);
            group_a.push(i);
        } else {
            mbr_b.expand(&rects[i]);
            group_b.push(i);
        }
    }
    (group_a, group_b)
}

/// STR leaf packing: sort by x-center into vertical slabs, then by y-center
/// within each slab, and chunk into leaves of `max` entries.
fn str_pack_leaves<T>(entries: &mut Vec<Entry<T>>, max: usize) -> Vec<Node<T>> {
    let n = entries.len();
    let leaf_count = n.div_ceil(max);
    let slab_count = (leaf_count as f64).sqrt().ceil() as usize;
    let slab_size = n.div_ceil(slab_count);

    entries.sort_by(|a, b| a.mbr.center().x.total_cmp(&b.mbr.center().x));
    let mut leaves = Vec::with_capacity(leaf_count);
    let mut rest = std::mem::take(entries);
    while !rest.is_empty() {
        let take = slab_size.min(rest.len());
        let mut slab: Vec<Entry<T>> = rest.drain(..take).collect();
        slab.sort_by(|a, b| a.mbr.center().y.total_cmp(&b.mbr.center().y));
        while !slab.is_empty() {
            let take = max.min(slab.len());
            let leaf_entries: Vec<Entry<T>> = slab.drain(..take).collect();
            let mbr = Rect::union_all(leaf_entries.iter().map(|e| e.mbr)).unwrap();
            leaves.push(Node::Leaf {
                mbr,
                entries: leaf_entries,
            });
        }
    }
    leaves
}

/// Packs one level of nodes into parents until a single root remains.
fn build_upward<T>(mut level: Vec<Node<T>>, max: usize) -> Node<T> {
    while level.len() > 1 {
        level.sort_by(|a, b| a.mbr().center().x.total_cmp(&b.mbr().center().x));
        let n = level.len();
        let parent_count = n.div_ceil(max);
        let slab_count = (parent_count as f64).sqrt().ceil() as usize;
        let slab_size = n.div_ceil(slab_count);
        let mut next = Vec::with_capacity(parent_count);
        let mut rest = std::mem::take(&mut level);
        while !rest.is_empty() {
            let take = slab_size.min(rest.len());
            let mut slab: Vec<Node<T>> = rest.drain(..take).collect();
            slab.sort_by(|a, b| a.mbr().center().y.total_cmp(&b.mbr().center().y));
            while !slab.is_empty() {
                let take = max.min(slab.len());
                let children: Vec<Node<T>> = slab.drain(..take).collect();
                let mbr = Rect::union_all(children.iter().map(|c| c.mbr())).unwrap();
                next.push(Node::Internal { mbr, children });
            }
        }
        level = next;
    }
    level
        .pop()
        .expect("build_upward requires at least one node")
}

fn query_rec<'a, T>(node: &'a Node<T>, query: &Rect, out: &mut Vec<&'a Entry<T>>) {
    match node {
        Node::Leaf { mbr, entries } => {
            if mbr.intersects(query) {
                out.extend(entries.iter().filter(|e| e.mbr.intersects(query)));
            }
        }
        Node::Internal { mbr, children } => {
            if mbr.intersects(query) {
                for child in children {
                    query_rec(child, query, out);
                }
            }
        }
    }
}

fn for_each_rec<'a, T, F: FnMut(&'a Entry<T>)>(node: &'a Node<T>, query: &Rect, f: &mut F) {
    match node {
        Node::Leaf { mbr, entries } => {
            if mbr.intersects(query) {
                for e in entries.iter().filter(|e| e.mbr.intersects(query)) {
                    f(e);
                }
            }
        }
        Node::Internal { mbr, children } => {
            if mbr.intersects(query) {
                for child in children {
                    for_each_rec(child, query, f);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indoor_geom::Point;
    use proptest::prelude::*;
    use rand::SeedableRng as _;

    fn pt_entry(x: f64, y: f64, id: usize) -> Entry<usize> {
        Entry {
            mbr: Rect::point(Point::new(x, y)),
            data: id,
        }
    }

    #[test]
    fn empty_tree() {
        let t: RTree<u32> = RTree::new();
        assert!(t.is_empty());
        assert_eq!(t.height(), 0);
        assert!(t.bounds().is_none());
        assert!(t.query(&Rect::from_coords(0.0, 0.0, 1.0, 1.0)).is_empty());
    }

    #[test]
    fn insert_and_query_small() {
        let mut t = RTree::new();
        for i in 0..20 {
            t.insert(Rect::point(Point::new(i as f64, i as f64)), i);
        }
        assert_eq!(t.len(), 20);
        let hits = t.query(&Rect::from_coords(4.5, 4.5, 9.5, 9.5));
        let mut ids: Vec<usize> = hits.iter().map(|e| e.data).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![5, 6, 7, 8, 9]);
    }

    #[test]
    fn bulk_load_matches_linear_scan() {
        let entries: Vec<Entry<usize>> = (0..200)
            .map(|i| pt_entry((i % 23) as f64, (i % 17) as f64, i))
            .collect();
        let reference = entries.clone();
        let t = RTree::bulk_load(entries);
        assert_eq!(t.len(), 200);
        let q = Rect::from_coords(3.0, 2.0, 9.0, 8.0);
        let mut got: Vec<usize> = t.query(&q).iter().map(|e| e.data).collect();
        got.sort_unstable();
        let mut want: Vec<usize> = reference
            .iter()
            .filter(|e| e.mbr.intersects(&q))
            .map(|e| e.data)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn height_grows_logarithmically() {
        let entries: Vec<Entry<usize>> = (0..1000)
            .map(|i| pt_entry((i / 32) as f64, (i % 32) as f64, i))
            .collect();
        let t = RTree::bulk_load_with_fanout(entries, 8);
        // 1000 entries, fanout 8 → 125 leaves → height 4 (8^3=512 < 1000 ≤ 8^4).
        assert!(t.height() >= 3 && t.height() <= 5, "height {}", t.height());
    }

    #[test]
    fn iter_visits_all() {
        let entries: Vec<Entry<usize>> = (0..57).map(|i| pt_entry(i as f64, 0.0, i)).collect();
        let t = RTree::bulk_load(entries);
        let mut seen: Vec<usize> = t.iter().map(|e| e.data).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..57).collect::<Vec<_>>());
    }

    #[test]
    fn incremental_inserts_with_random_rects_match_scan() {
        use rand::Rng as _;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut t = RTree::with_fanout(4);
        let mut reference = Vec::new();
        for i in 0..300 {
            let x = rng.gen_range(0.0..100.0f64);
            let y = rng.gen_range(0.0..100.0f64);
            let w = rng.gen_range(0.0..10.0f64);
            let h = rng.gen_range(0.0..10.0f64);
            let r = Rect::from_coords(x, y, x + w, y + h);
            t.insert(r, i);
            reference.push(Entry { mbr: r, data: i });
        }
        for _ in 0..20 {
            let x = rng.gen_range(0.0..100.0f64);
            let y = rng.gen_range(0.0..100.0f64);
            let q = Rect::from_coords(x, y, x + 15.0, y + 15.0);
            let mut got: Vec<usize> = t.query(&q).iter().map(|e| e.data).collect();
            got.sort_unstable();
            let mut want: Vec<usize> = reference
                .iter()
                .filter(|e| e.mbr.intersects(&q))
                .map(|e| e.data)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn for_each_matches_query() {
        let entries: Vec<Entry<usize>> = (0..100)
            .map(|i| pt_entry((i % 10) as f64, (i / 10) as f64, i))
            .collect();
        let t = RTree::bulk_load(entries);
        let q = Rect::from_coords(2.0, 2.0, 5.0, 5.0);
        let mut via_callback = Vec::new();
        t.for_each_intersecting(&q, |e| via_callback.push(e.data));
        via_callback.sort_unstable();
        let mut via_query: Vec<usize> = t.query(&q).iter().map(|e| e.data).collect();
        via_query.sort_unstable();
        assert_eq!(via_callback, via_query);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn query_equals_linear_scan(
            points in proptest::collection::vec((0.0..50.0f64, 0.0..50.0f64), 1..120),
            qx in 0.0..50.0f64, qy in 0.0..50.0f64, qw in 0.0..25.0f64, qh in 0.0..25.0f64,
        ) {
            let entries: Vec<Entry<usize>> = points
                .iter()
                .enumerate()
                .map(|(i, &(x, y))| pt_entry(x, y, i))
                .collect();
            let reference = entries.clone();
            let t = RTree::bulk_load_with_fanout(entries, 4);
            let q = Rect::from_coords(qx, qy, qx + qw, qy + qh);
            let mut got: Vec<usize> = t.query(&q).iter().map(|e| e.data).collect();
            got.sort_unstable();
            let mut want: Vec<usize> = reference
                .iter()
                .filter(|e| e.mbr.intersects(&q))
                .map(|e| e.data)
                .collect();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }

        #[test]
        fn bounds_cover_all_entries(
            points in proptest::collection::vec((0.0..50.0f64, 0.0..50.0f64), 1..60),
        ) {
            let entries: Vec<Entry<usize>> = points
                .iter()
                .enumerate()
                .map(|(i, &(x, y))| pt_entry(x, y, i))
                .collect();
            let t = RTree::bulk_load(entries);
            let b = t.bounds().unwrap();
            for &(x, y) in &points {
                prop_assert!(b.contains_point(Point::new(x, y)));
            }
        }
    }
}
