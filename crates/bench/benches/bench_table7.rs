//! Table 7 (paper §5.3.3): the RFID comparators SCC and UR against BF.
//! The benchmark times them; the effectiveness comparison (Kendall τ) is
//! produced by `experiments table7`.

use criterion::{criterion_group, criterion_main, Criterion};
use popflow_bench::{query, run_once, synthetic_lab, Method};

fn bench(c: &mut Criterion) {
    let mut lab = synthetic_lab();
    lab.ensure_rfid();
    let q = query(&lab, 10, 0.08, 15, 7);
    let mut group = c.benchmark_group("table7");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for method in [Method::Scc, Method::Ur, Method::Bf] {
        group.bench_function(method.name(), |b| b.iter(|| run_once(&mut lab, method, &q)));
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
