//! Fixture corpus: each rule fires on its known-bad snippet at the
//! expected lines, and stays quiet on the known-clean twin.
//!
//! Fixtures are analyzed under *virtual* workspace-relative paths so
//! the corpus exercises the real path scoping (hot path, kernel path,
//! obs exemption, crate roots) without living inside those crates.

use popflow_anlz::analyze_source;

const R1_BAD: &str = include_str!("fixtures/r1_bad.rs");
const R1_CLEAN: &str = include_str!("fixtures/r1_clean.rs");
const R2_BAD: &str = include_str!("fixtures/r2_bad.rs");
const R2_CLEAN: &str = include_str!("fixtures/r2_clean.rs");
const R3_BAD: &str = include_str!("fixtures/r3_bad.rs");
const R3_CLEAN: &str = include_str!("fixtures/r3_clean.rs");
const R4_BAD: &str = include_str!("fixtures/r4_bad.rs");
const R4_CLEAN: &str = include_str!("fixtures/r4_clean.rs");
const R5_BAD: &str = include_str!("fixtures/r5_bad.rs");
const R5_CLEAN: &str = include_str!("fixtures/r5_clean.rs");

/// `(rule, line)` pairs of the unsuppressed findings.
fn findings(path: &str, src: &str, is_crate_root: bool) -> Vec<(String, u32)> {
    analyze_source(path, src, is_crate_root)
        .diagnostics
        .into_iter()
        .map(|d| (d.rule.to_string(), d.line))
        .collect()
}

const HOT: &str = "crates/serve/src/fixture.rs";
const KERNEL: &str = "crates/core/src/fixture.rs";
const EXEC: &str = "crates/exec/src/fixture.rs";

#[test]
fn r1_bad_fires_on_both_iteration_forms() {
    assert_eq!(
        findings(HOT, R1_BAD, false),
        vec![
            ("nondeterministic-iteration".to_string(), 6),
            ("nondeterministic-iteration".to_string(), 11),
        ]
    );
}

#[test]
fn r1_clean_is_quiet() {
    assert_eq!(findings(HOT, R1_CLEAN, false), vec![]);
}

#[test]
fn r1_bad_is_quiet_outside_the_hot_path() {
    assert_eq!(
        findings("crates/eval/src/fixture.rs", R1_BAD, false),
        vec![]
    );
}

#[test]
fn r2_bad_fires_on_hash_ordered_float_sum() {
    assert_eq!(
        findings(KERNEL, R2_BAD, false),
        vec![("unordered-float-accumulation".to_string(), 6)]
    );
}

#[test]
fn r2_clean_is_quiet() {
    assert_eq!(findings(KERNEL, R2_CLEAN, false), vec![]);
}

#[test]
fn r3_bad_fires_on_unwrap_subscript_and_panic() {
    assert_eq!(
        findings(HOT, R3_BAD, false),
        vec![
            ("panic-in-hot-path".to_string(), 4),
            ("panic-in-hot-path".to_string(), 5),
            ("panic-in-hot-path".to_string(), 10),
        ]
    );
}

#[test]
fn r3_clean_is_quiet() {
    assert_eq!(findings(HOT, R3_CLEAN, false), vec![]);
}

#[test]
fn r4_bad_fires_on_bare_relaxed() {
    assert_eq!(
        findings(EXEC, R4_BAD, false),
        vec![("atomic-ordering-audit".to_string(), 6)]
    );
}

#[test]
fn r4_bad_is_exempt_under_obs() {
    assert_eq!(findings("crates/obs/src/fixture.rs", R4_BAD, false), vec![]);
}

#[test]
fn r4_clean_suppresses_with_pragma() {
    let report = analyze_source(EXEC, R4_CLEAN, false);
    assert!(report.diagnostics.is_empty());
    assert_eq!(report.suppressed.len(), 1);
    assert_eq!(report.suppressed[0].rule, "atomic-ordering-audit");
    assert_eq!(report.allows.len(), 1);
    assert_eq!(report.allows[0].reason, "counter is telemetry-only");
}

#[test]
fn r5_bad_fires_twice_on_the_crate_root() {
    assert_eq!(
        findings("crates/eval/src/lib.rs", R5_BAD, true),
        vec![
            ("missing-crate-hygiene".to_string(), 1),
            ("missing-crate-hygiene".to_string(), 1),
        ]
    );
}

#[test]
fn r5_bad_is_quiet_when_not_a_crate_root() {
    assert_eq!(findings("crates/eval/src/other.rs", R5_BAD, false), vec![]);
}

#[test]
fn r5_clean_is_quiet() {
    assert_eq!(findings("crates/eval/src/lib.rs", R5_CLEAN, true), vec![]);
}
