//! The Top-k Popular Location Query (TkPLQ, Problem 1) and its three
//! search algorithms: Naive, Nested-Loop (Algorithm 3), and Best-First
//! (Algorithm 4).

mod best_first;
pub mod bounds;
pub mod continuous;
pub mod density;
mod naive;
mod nested_loop;
pub mod request;

pub use best_first::{best_first, best_first_par};
pub use bounds::{LocationBound, ThresholdHeap, ThresholdStep};
pub use continuous::{
    diff_topk, ContinuousEngine, ContinuousTkPlq, ContinuousUpdate, QueryId, QuerySpec,
    RecomputeEngine, WindowSpec,
};
pub use density::{sloc_area, top_k_dense};
pub use naive::naive;
pub use nested_loop::{nested_loop, nested_loop_par};
pub use request::{BatchEngine, Instrumented, TkplqRequest};

use indoor_iupt::{ObjectId, TimeInterval};
use indoor_model::SLocId;

use crate::query_set::QuerySet;

/// A Top-k Popular Location Query: return the `k` S-locations of `Q` with
/// the highest indoor flows during `[ts, te]`.
#[derive(Debug, Clone)]
pub struct TkPlQuery {
    /// How many locations to return.
    pub k: usize,
    /// The candidate S-locations `Q`.
    pub query_set: QuerySet,
    /// The query window `[ts, te]`.
    pub interval: TimeInterval,
}

impl TkPlQuery {
    /// Creates a query; `k` is clamped to `|Q|` (requesting more locations
    /// than exist simply returns all of them ranked).
    pub fn new(k: usize, query_set: QuerySet, interval: TimeInterval) -> Self {
        assert!(k >= 1, "k must be at least 1");
        TkPlQuery {
            k: k.min(query_set.len()).max(1),
            query_set,
            interval,
        }
    }
}

/// One ranked result location.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedLocation {
    /// The ranked S-location.
    pub sloc: SLocId,
    /// Its indoor flow over the query window.
    pub flow: f64,
}

/// Work accounting for a TkPLQ evaluation.
#[derive(Debug, Clone, Default)]
pub struct SearchStats {
    /// Objects with records in the query window (`|O|`).
    pub objects_total: usize,
    /// Objects whose presence the algorithm had to compute (`|Of|`).
    pub objects_computed: usize,
    /// Objects the [`crate::PresenceEngine::Hybrid`] engine evaluated with
    /// the DP after their path set exceeded the budget (0 for the pure
    /// engines).
    pub dp_fallback_objects: usize,
}

impl SearchStats {
    /// The pruning ratio `σ = (|O| − |Of|) / |O|` (§5.1).
    pub fn pruning_ratio(&self) -> f64 {
        if self.objects_total == 0 {
            return 0.0;
        }
        (self.objects_total - self.objects_computed) as f64 / self.objects_total as f64
    }

    /// Records these counters into `registry` under
    /// `batch.<engine>.{evaluations, objects_total, objects_computed,
    /// dp_fallback_objects}` — the shared export path batch and serve
    /// telemetry agree on. Callers of the classic free functions
    /// (`nested_loop`, `best_first`, ...) can route their stats with
    /// one call instead of bespoke plumbing; the
    /// [`Instrumented`] engine wrapper does this automatically.
    pub fn record_to(&self, registry: &popflow_obs::MetricsRegistry, engine: &str) {
        registry
            .counter(&format!("batch.{engine}.evaluations"))
            .inc();
        registry
            .counter(&format!("batch.{engine}.objects_total"))
            .add(self.objects_total as u64);
        registry
            .counter(&format!("batch.{engine}.objects_computed"))
            .add(self.objects_computed as u64);
        registry
            .counter(&format!("batch.{engine}.dp_fallback_objects"))
            .add(self.dp_fallback_objects as u64);
    }
}

/// The outcome of a TkPLQ: the top-k ranking plus work statistics.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Top-k S-locations in descending flow order (ties broken by id).
    pub ranking: Vec<RankedLocation>,
    /// Work accounting for the evaluation.
    pub stats: SearchStats,
}

impl QueryOutcome {
    /// Just the ranked S-location ids.
    pub fn topk_slocs(&self) -> Vec<SLocId> {
        self.ranking.iter().map(|r| r.sloc).collect()
    }
}

/// Ranks `(sloc, flow)` scores and keeps the top `k`, breaking flow ties by
/// ascending S-location id so every algorithm returns the same ranking on
/// tied inputs. Public so external evaluation strategies (notably the
/// `popflow-serve` incremental engine) rank exactly like the built-in
/// searches.
pub fn rank_topk(scores: Vec<(SLocId, f64)>, k: usize) -> Vec<RankedLocation> {
    let mut ranked: Vec<RankedLocation> = scores
        .into_iter()
        .map(|(sloc, flow)| RankedLocation { sloc, flow })
        .collect();
    ranked.sort_by(|a, b| b.flow.total_cmp(&a.flow).then(a.sloc.cmp(&b.sloc)));
    ranked.truncate(k);
    ranked
}

/// Tracks the distinct objects whose presence has been computed.
#[derive(Debug, Default)]
pub(crate) struct ComputedSet {
    seen: std::collections::HashSet<ObjectId>,
}

impl ComputedSet {
    pub fn mark(&mut self, oid: ObjectId) {
        self.seen.insert(oid);
    }

    pub fn count(&self) -> usize {
        self.seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indoor_iupt::Timestamp;

    fn s(i: u32) -> SLocId {
        SLocId(i)
    }

    #[test]
    fn rank_topk_orders_and_breaks_ties() {
        let ranked = rank_topk(vec![(s(3), 1.0), (s(1), 2.0), (s(2), 1.0), (s(0), 0.5)], 3);
        let ids: Vec<SLocId> = ranked.iter().map(|r| r.sloc).collect();
        assert_eq!(ids, vec![s(1), s(2), s(3)]);
    }

    #[test]
    fn query_clamps_k() {
        let q = TkPlQuery::new(
            10,
            QuerySet::new(vec![s(0), s(1)]),
            TimeInterval::new(Timestamp(0), Timestamp(10)),
        );
        assert_eq!(q.k, 2);
    }

    #[test]
    fn pruning_ratio_edge_cases() {
        let st = SearchStats {
            objects_total: 0,
            objects_computed: 0,
            dp_fallback_objects: 0,
        };
        assert_eq!(st.pruning_ratio(), 0.0);
        let st = SearchStats {
            objects_total: 10,
            objects_computed: 4,
            dp_fallback_objects: 0,
        };
        assert!((st.pruning_ratio() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn computed_set_deduplicates() {
        let mut c = ComputedSet::default();
        c.mark(ObjectId(1));
        c.mark(ObjectId(1));
        c.mark(ObjectId(2));
        assert_eq!(c.count(), 2);
    }
}
