//! Engine-equivalence and throughput gates for the `popflow-serve`
//! incremental engine.
//!
//! The incremental engine's whole value rests on two claims, both checked
//! here mechanically rather than by eye:
//!
//! 1. **Exactness** — on every slide, over random scenarios and random
//!    window/bucket/shard configurations, the incremental top-k equals
//!    the batch Nested-Loop result on the identical window (property
//!    test).
//! 2. **Speed** — at window/bucket ratio ≥ 8 the incremental engine's
//!    per-advance latency beats the recompute-per-slide baseline by ≥ 5×,
//!    with identical top-k lists on every slide (throughput experiment).
//!
//! Run with: `cargo test -p popflow-eval --test serve_equivalence`

use std::sync::Arc;

use indoor_iupt::{Iupt, Record, Timestamp};
use popflow_core::{
    nested_loop, ContinuousEngine, FlowConfig, QuerySet, RecomputeEngine, TkPlQuery, WindowSpec,
};
use popflow_eval::experiments::streaming::{run_streaming, StreamingConfig};
use popflow_serve::{ServeConfig, ServeEngine};
use proptest::prelude::*;

/// Drives the serve engine and the recompute baseline over one generated
/// world with the given geometry, asserting equal top-k lists (and equal
/// deltas) on every bucket-aligned slide; spot-checks one slide against a
/// direct one-shot Nested-Loop query.
fn assert_equivalent(
    seed: u64,
    bucket_secs: i64,
    window_buckets: usize,
    num_shards: usize,
    k: usize,
) -> Result<(), TestCaseError> {
    let world = indoor_sim::World::generate(indoor_sim::Scenario::tiny().with_seed(seed));
    let space = Arc::new(world.space.clone());
    let slocs: Vec<_> = world.space.slocs().iter().map(|s| s.id).collect();
    let spec = WindowSpec::new(bucket_secs * 1000, window_buckets);
    // Alternate the normalization for extra coverage; DP engine keeps the
    // exponential path construction out of the hot loop.
    let flow = if seed % 2 == 0 {
        FlowConfig::default().with_dp_engine()
    } else {
        FlowConfig::default()
            .with_dp_engine()
            .with_full_product_normalization()
    };

    let mut serve = ServeEngine::new(
        Arc::clone(&space),
        ServeConfig::new(k, QuerySet::new(slocs.clone()), spec)
            .with_shards(num_shards)
            .with_flow(flow),
    );
    let mut batch = RecomputeEngine::new(
        Arc::clone(&space),
        k,
        QuerySet::new(slocs.clone()),
        spec,
        flow,
    );

    let records: Vec<Record> = world.iupt.records().to_vec();
    let duration = world.scenario.mobility.duration_secs;
    let last_bucket = spec.last_complete_bucket(Timestamp::from_secs(duration));
    let mut next = 0usize;
    let mut checked_one_shot = false;
    for b in 0..=last_bucket {
        let now = spec.bucket_interval(b).end;
        while next < records.len() && records[next].t <= now {
            serve.ingest(records[next].clone()).expect("ordered stream");
            batch.ingest(records[next].clone()).expect("ordered stream");
            next += 1;
        }
        let a = serve.advance(now).expect("serve advance");
        let c = batch.advance(now).expect("batch advance");
        prop_assert_eq!(&a.window, &c.window);
        prop_assert_eq!(a.outcome.topk_slocs(), c.outcome.topk_slocs());
        prop_assert_eq!(&a.entered, &c.entered);
        prop_assert_eq!(&a.left, &c.left);

        // Mid-replay, pin one slide against a literal one-shot batch
        // query over the same records — guarding the baseline itself.
        if !checked_one_shot && b >= window_buckets as i64 {
            let mut iupt = Iupt::from_records(records[..next].to_vec());
            let one_shot = nested_loop(
                &world.space,
                &mut iupt,
                &TkPlQuery::new(k, QuerySet::new(slocs.clone()), a.window),
                &flow,
            )
            .expect("one-shot query");
            prop_assert_eq!(a.outcome.topk_slocs(), one_shot.topk_slocs());
            checked_one_shot = true;
        }
    }
    // Records in the final partial bucket are legitimately left unfed —
    // the window only ever covers complete buckets.
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random worlds × random window geometry × random sharding: the
    /// incremental engine must match batch evaluation on every slide.
    #[test]
    fn incremental_topk_equals_batch_on_random_configs(
        seed in 0u64..10_000,
        bucket_secs in 20i64..150,
        window_buckets in 1usize..7,
        num_shards in 1usize..5,
        k in 1usize..6,
    ) {
        assert_equivalent(seed, bucket_secs, window_buckets, num_shards, k)?;
    }
}

/// The headline acceptance gate: ≥ 5× cheaper advances at window/bucket
/// ratio 16 (≥ 8), identical rankings throughout. Both the wall-clock
/// speedup and its machine-independent proxy (presence computations) are
/// asserted. The work ratio and the equality audit are deterministic and
/// asserted on every attempt; the wall-clock ratio (measured ≈ 7× on one
/// idle core) gets up to three attempts so a noisy neighbour cannot fail
/// a correct build — a real performance regression fails all three.
#[test]
fn incremental_advances_beat_recompute_5x_with_identical_topk() {
    let mut best_speedup: f64 = 0.0;
    for attempt in 1..=3 {
        let cfg = StreamingConfig::scaled(0.5, 0xbeef + attempt);
        assert!(
            cfg.window_buckets >= 8,
            "the gate is defined at window/bucket ratio ≥ 8"
        );
        let report = run_streaming(&cfg);
        assert!(report.slides >= 16, "too few slides: {}", report.slides);
        assert_eq!(
            report.mismatched_slides, 0,
            "attempt {attempt}: engines diverged on {} of {} slides",
            report.mismatched_slides, report.slides
        );
        assert!(
            report.work_ratio >= 5.0,
            "attempt {attempt}: presence-work ratio {:.2} below 5x (incremental {} vs baseline {})",
            report.work_ratio,
            report.incremental.presence_computations,
            report.baseline.presence_computations
        );
        best_speedup = best_speedup.max(report.speedup);
        if best_speedup >= 5.0 {
            return;
        }
        eprintln!(
            "attempt {attempt}: wall-clock speedup {:.2}x (incremental {:.3} ms vs baseline {:.3} ms), retrying",
            report.speedup,
            report.incremental.mean_ms(),
            report.baseline.mean_ms()
        );
    }
    panic!("wall-clock advance speedup {best_speedup:.2}x below 5x after 3 attempts");
}
