//! The `popflow-server` binary: serves the canonical load-profile
//! venue over TCP until killed.
//!
//! The venue (and therefore the engine's `IndoorSpace`) is derived
//! from `--scale`/`--seed` exactly as the `server_load` experiment's
//! reference engine derives it, so a client driving the matching
//! profile gets bit-identical deltas.

use std::sync::Arc;

use popflow_serve::AdvanceStrategy;
use popflow_server::scenario::LoadProfile;
use popflow_server::Server;

const USAGE: &str = "\
popflow-server: TCP front-end over the popflow serving engine

USAGE: popflow-server [OPTIONS]

OPTIONS:
  --bind ADDR            listen address (default 127.0.0.1:0)
  --scale F              load-profile population scale (default 0.1)
  --seed N               load-profile seed (default 7)
  --streams N            ingest connections to wait for before
                         releasing any record (default 0)
  --tick-millis N        scheduler tick period (default from profile)
  --budget-records N     per-tick ingest drain budget (default from
                         profile)
  --queue-records N      global ingest queue capacity (default from
                         profile)
  --strategy NAME        advance strategy: eager | pruned (default
                         eager)
  --help                 print this help
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(msg) = run(&args) {
        eprintln!("popflow-server: {msg}");
        std::process::exit(2);
    }
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<&String>) -> Result<T, String> {
    let raw = value.ok_or_else(|| format!("{flag} needs a value"))?;
    raw.parse()
        .map_err(|_| format!("{flag}: cannot parse {raw:?}"))
}

fn run(args: &[String]) -> Result<(), String> {
    let mut bind = "127.0.0.1:0".to_string();
    let mut scale = 0.1f64;
    let mut seed = 7u64;
    let mut streams = 0u32;
    let mut tick_millis: Option<u64> = None;
    let mut budget_records: Option<usize> = None;
    let mut queue_records: Option<usize> = None;
    let mut strategy = AdvanceStrategy::Eager;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--bind" => bind = parse(flag, it.next())?,
            "--scale" => scale = parse(flag, it.next())?,
            "--seed" => seed = parse(flag, it.next())?,
            "--streams" => streams = parse(flag, it.next())?,
            "--tick-millis" => tick_millis = Some(parse(flag, it.next())?),
            "--budget-records" => budget_records = Some(parse(flag, it.next())?),
            "--queue-records" => queue_records = Some(parse(flag, it.next())?),
            "--strategy" => {
                strategy = match it.next().map(String::as_str) {
                    Some("eager") => AdvanceStrategy::Eager,
                    Some("pruned") => AdvanceStrategy::BoundPruned,
                    other => {
                        return Err(format!("--strategy: expected eager|pruned, got {other:?}"))
                    }
                }
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return Ok(());
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    // NaN must fail too, so compare for the accepted range directly.
    if scale.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return Err("--scale must be positive".to_string());
    }

    let profile = LoadProfile::new(scale, seed);
    eprintln!("popflow-server: generating load-profile venue (scale {scale}, seed {seed})...");
    let (world, _stream) = profile.build();
    let space = Arc::new(world.space);

    let mut config = profile.server_config().with_min_ingest_streams(streams);
    config.serve = config.serve.with_strategy(strategy);
    if let Some(t) = tick_millis {
        config = config.with_tick_millis(t);
    }
    if let Some(r) = budget_records {
        let bytes = config.tick_budget_bytes;
        config = config.with_ingest_budget(r, bytes);
    }
    if let Some(q) = queue_records {
        config = config.with_queue_capacity(q);
    }

    let server = Server::start(space, config, &bind).map_err(|e| format!("bind {bind}: {e}"))?;
    // The address line is the readiness signal scripts wait for; keep
    // it on stdout and flushed.
    println!("popflow-server listening on {}", server.local_addr());
    use std::io::Write;
    let _ = std::io::stdout().flush();

    // Serve until killed.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
