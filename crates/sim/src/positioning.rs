//! WkNN-style probabilistic positioning simulation (§5.3): every at-most-T
//! seconds an object reports a sample set of up to `mss` P-locations drawn
//! from within `μ` meters of its true position, weighted inversely to
//! distance with multiplicative noise `γ ∈ [−0.2, 0.2]` —
//! `w(loc) = 1 / (dist(loc, o.loc) · (1 + γ))`, `prob_i = w_i / Σ w_k`.

use std::collections::HashMap;

use indoor_geom::Point;
use indoor_iupt::{Iupt, Record, SampleSet};
use indoor_model::{FloorId, IndoorSpace, PLocId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::trajectory::Trajectory;

/// How many samples a report carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SampleSizePolicy {
    /// Always the `mss` nearest candidates — classic WkNN behaviour, and
    /// the default. A static user then reports a *stable* support set,
    /// which is precisely what makes the paper's inter-merge collapse
    /// dwell periods and keeps path enumeration tractable (the paper's
    /// measured BF/NL times are only reachable with stable supports; see
    /// DESIGN.md §3).
    #[default]
    Fixed,
    /// `|X|` drawn uniformly from `1..=mss` per report — the literal
    /// wording of §5.3 ("|X| is random between 1 and mss"). Supports then
    /// flip between report sizes, inter-merge rarely applies, and exact
    /// enumeration degenerates; kept as a stress-test knob.
    UniformRandom,
}

/// Positioning simulation parameters.
#[derive(Debug, Clone)]
pub struct PositioningConfig {
    /// Maximum sample-set size (paper default 4).
    pub mss: usize,
    /// Sample-count policy per report.
    pub sample_size: SampleSizePolicy,
    /// Maximum positioning period `T` in seconds: consecutive reports of
    /// one object are at most `T` apart (paper: 1–7 s, default 3 s).
    pub max_period_secs: f64,
    /// Indoor positioning error `μ` in meters: candidate P-locations lie
    /// within `μ` of the true position (paper: 3–7 m, default 5 m; the
    /// real data has ≈ 2.1 m).
    pub mu: f64,
    /// Amplitude of the weight noise `γ` (paper: 0.2).
    pub gamma: f64,
    /// Wall attenuation: candidates in a *different* partition than the
    /// true position (and not at one of its doors) have their effective
    /// distance multiplied by this factor. Wi-Fi fingerprints differ
    /// sharply across walls, so through-wall reference points rarely make
    /// the WkNN top-k; a pure-Euclidean candidate model would leak room
    /// interiors to corridor walkers and grossly inflate pass
    /// probabilities.
    pub wall_factor: f64,
    /// Re-emit the cached WkNN answer while an object dwells at an
    /// unchanged position (same floor, exact same point, same
    /// partition). Real connectivity-based positioning pipelines behave
    /// this way — an unchanged fingerprint match returns the cached
    /// result, so a dwelling device re-reports the *identical* sample
    /// set for long stretches (the redundancy LOCATER-style WiFi feeds
    /// and public-space traces both exhibit, and what `popflow-store`
    /// interning exploits). Off by default: the paper's §5 workloads
    /// draw fresh weight noise per report, and every batch experiment
    /// keeps that behaviour bit for bit.
    pub dwell_cache: bool,
    /// RNG seed.
    pub seed: u64,
}

impl PositioningConfig {
    /// The paper's synthetic defaults.
    pub fn paper_synthetic() -> Self {
        PositioningConfig {
            mss: 4,
            sample_size: SampleSizePolicy::Fixed,
            max_period_secs: 3.0,
            mu: 5.0,
            gamma: 0.2,
            wall_factor: 2.5,
            dwell_cache: false,
            seed: 0x90f1,
        }
    }

    /// The real-data analog: T = 3 s, mss = 4, and μ = 3 m — candidates
    /// drawn within 3 m have a mean offset of ≈ 2.1 m, the paper's
    /// reported average positioning error.
    pub fn real_floor_analog() -> Self {
        PositioningConfig {
            mss: 4,
            sample_size: SampleSizePolicy::Fixed,
            max_period_secs: 3.0,
            mu: 3.0,
            gamma: 0.2,
            wall_factor: 2.5,
            dwell_cache: false,
            seed: 0x90f1,
        }
    }
}

/// Generates the Indoor Uncertain Positioning Table for the given
/// trajectories.
pub fn generate_iupt(
    space: &IndoorSpace,
    trajectories: &[Trajectory],
    cfg: &PositioningConfig,
) -> Iupt {
    assert!(cfg.mss >= 1, "mss must be at least 1");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let index = PLocIndex::build(space, cfg.mu.max(3.0));
    let mut records: Vec<Record> = Vec::new();
    let mut candidates: Vec<(PLocId, f64)> = Vec::new();

    for traj in trajectories {
        let mut t = traj.born;
        // The per-trajectory WkNN cache: (floor, exact position,
        // partition) of the last report, and its answer. Only consulted
        // with `cfg.dwell_cache` — a cache hit re-emits the identical
        // sample set without touching the RNG, exactly like a pipeline
        // serving an unchanged fingerprint match from cache.
        let mut last: Option<(FloorId, Point, indoor_model::PartitionId, SampleSet)> = None;
        while t <= traj.died {
            let Some((floor, pos, partition)) = traj.position_at_detailed(t) else {
                break;
            };
            let cached = if cfg.dwell_cache {
                last.as_ref()
                    .filter(|(f, p, pt, _)| {
                        *f == floor && p.x == pos.x && p.y == pos.y && *pt == partition
                    })
                    .map(|(_, _, _, s)| s.clone())
            } else {
                None
            };
            let report = match cached {
                Some(samples) => Some(samples),
                None => {
                    let fresh = sample_report(
                        space,
                        &index,
                        floor,
                        pos,
                        partition,
                        cfg,
                        &mut rng,
                        &mut candidates,
                    );
                    // Only a fresh answer updates the cache — a hit
                    // already equals it, key and value alike.
                    if cfg.dwell_cache {
                        if let Some(samples) = &fresh {
                            last = Some((floor, pos, partition, samples.clone()));
                        }
                    }
                    fresh
                }
            };
            if let Some(samples) = report {
                records.push(Record {
                    oid: traj.oid,
                    t,
                    samples,
                });
            }
            // Next report at most T seconds later; real deployments hover
            // near the maximum period (the paper's real data averages one
            // report per ~2.9 s with T = 3 s).
            let gap_ms = (rng.gen_range(0.7..=1.0) * cfg.max_period_secs * 1000.0) as i64;
            t = t.plus_millis(gap_ms.max(100));
        }
    }

    Iupt::from_records(records)
}

/// Builds one sample set at the given true position, or `None` when no
/// P-location is anywhere near (cannot happen in generated buildings, but
/// tolerated). Distances are *effective* (wall-attenuated) distances.
#[allow(clippy::too_many_arguments)]
fn sample_report(
    space: &IndoorSpace,
    index: &PLocIndex,
    floor: FloorId,
    pos: Point,
    partition: indoor_model::PartitionId,
    cfg: &PositioningConfig,
    rng: &mut StdRng,
    scratch: &mut Vec<(PLocId, f64)>,
) -> Option<SampleSet> {
    scratch.clear();
    // Search a radius wide enough that attenuated candidates can still
    // qualify, then filter on effective distance.
    index.within(
        space,
        floor,
        pos,
        cfg.mu * cfg.wall_factor.max(1.0),
        scratch,
    );
    for entry in scratch.iter_mut() {
        entry.1 *= attenuation(space, entry.0, partition, cfg.wall_factor);
    }
    scratch.retain(|&(_, d)| d <= cfg.mu);
    if scratch.is_empty() {
        // Degenerate coverage: fall back to the nearest known P-location.
        let nearest = index.nearest(space, floor, pos)?;
        scratch.push(nearest);
    }

    let k = match cfg.sample_size {
        SampleSizePolicy::Fixed => cfg.mss,
        SampleSizePolicy::UniformRandom => rng.gen_range(1..=cfg.mss),
    }
    .min(scratch.len());
    // WkNN returns the k reference points whose signal features match
    // best — i.e. (noise aside) the k *nearest* candidates. Selecting by
    // distance keeps report supports stable while an object dwells, which
    // is what makes the paper's inter-merge effective on real data.
    scratch.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));

    let weights: Vec<(PLocId, f64)> = scratch[..k]
        .iter()
        .map(|&(loc, dist)| {
            let gamma = rng.gen_range(-cfg.gamma..=cfg.gamma);
            let w = 1.0 / (dist.max(0.1) * (1.0 + gamma));
            (loc, w)
        })
        .collect();
    SampleSet::normalized(weights).ok()
}

/// Effective-distance multiplier for a candidate P-location as heard from
/// inside `partition`: 1 for same-partition presence points and for the
/// partitioning points at this partition's doors (including stairwell
/// points, hearable from both flights); `wall_factor` otherwise.
fn attenuation(
    space: &IndoorSpace,
    ploc: PLocId,
    partition: indoor_model::PartitionId,
    wall_factor: f64,
) -> f64 {
    match space.ploc(ploc).kind {
        indoor_model::PLocKind::Presence { partition: p } => {
            if p == partition {
                1.0
            } else {
                wall_factor
            }
        }
        indoor_model::PLocKind::Partitioning { door } => {
            let d = space.building().door(door);
            if d.touches(partition) {
                1.0
            } else {
                wall_factor
            }
        }
    }
}

/// A per-floor uniform grid over P-locations for radius queries.
struct PLocIndex {
    cell: f64,
    grids: HashMap<FloorId, Grid>,
}

struct Grid {
    min: Point,
    cols: i64,
    rows: i64,
    buckets: HashMap<(i64, i64), Vec<PLocId>>,
}

impl PLocIndex {
    fn build(space: &IndoorSpace, cell: f64) -> Self {
        let mut grids: HashMap<FloorId, Grid> = HashMap::new();
        for floor in space.building().floors() {
            let Some(bounds) = space.building().floor_bounds(floor) else {
                continue;
            };
            // Stair stubs extend past the nominal bounds; inflate a bit.
            let bounds = bounds.inset(8.0);
            grids.insert(
                floor,
                Grid {
                    min: bounds.min,
                    cols: (bounds.width() / cell).ceil() as i64 + 1,
                    rows: (bounds.height() / cell).ceil() as i64 + 1,
                    buckets: HashMap::new(),
                },
            );
        }
        let mut idx = PLocIndex { cell, grids };
        for p in space.plocs() {
            // A P-location is a candidate on its own floor — and, for the
            // partitioning P-locations of staircase flights, on the other
            // flight's floor too: a stairwell reference point is hearable
            // from both flights, and it is exactly the sample that lets
            // possible paths bridge a floor change.
            let mut floors = vec![p.floor];
            if let indoor_model::PLocKind::Partitioning { door } = p.kind {
                let d = space.building().door(door);
                let fa = space.building().partition(d.a).floor;
                let fb = space.building().partition(d.b).floor;
                if fa != fb {
                    floors = vec![fa, fb];
                }
            }
            for floor in floors {
                let key = idx.key(floor, p.pos);
                if let Some(grid) = idx.grids.get_mut(&floor) {
                    grid.buckets.entry(key).or_default().push(p.id);
                }
            }
        }
        idx
    }

    fn key(&self, floor: FloorId, pos: Point) -> (i64, i64) {
        let grid = &self.grids[&floor];
        let c = ((pos.x - grid.min.x) / self.cell).floor() as i64;
        let r = ((pos.y - grid.min.y) / self.cell).floor() as i64;
        (c.clamp(0, grid.cols - 1), r.clamp(0, grid.rows - 1))
    }

    /// All P-locations within `radius` of `pos` on `floor`, with their
    /// distances, appended to `out`.
    fn within(
        &self,
        space: &IndoorSpace,
        floor: FloorId,
        pos: Point,
        radius: f64,
        out: &mut Vec<(PLocId, f64)>,
    ) {
        let Some(grid) = self.grids.get(&floor) else {
            return;
        };
        let reach = (radius / self.cell).ceil() as i64;
        let (c0, r0) = self.key(floor, pos);
        for dc in -reach..=reach {
            for dr in -reach..=reach {
                let key = (
                    (c0 + dc).clamp(0, grid.cols - 1),
                    (r0 + dr).clamp(0, grid.rows - 1),
                );
                if let Some(bucket) = grid.buckets.get(&key) {
                    for &ploc in bucket {
                        let d = space.ploc(ploc).pos.distance(pos);
                        if d <= radius {
                            out.push((ploc, d));
                        }
                    }
                }
            }
        }
        // Clamped keys can repeat near the grid edge; dedup.
        out.sort_by_key(|e| e.0);
        out.dedup_by_key(|e| e.0);
    }

    /// Nearest P-location on `floor` (linear fallback).
    fn nearest(&self, space: &IndoorSpace, floor: FloorId, pos: Point) -> Option<(PLocId, f64)> {
        space
            .plocs()
            .iter()
            .filter(|p| p.floor == floor)
            .map(|p| (p.id, p.pos.distance(pos)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::building_gen::{generate_building, BuildingGenConfig};
    use crate::mobility::{simulate_mobility, MobilityConfig};
    use indoor_iupt::Timestamp;

    fn world() -> (IndoorSpace, Vec<Trajectory>) {
        let space = generate_building(&BuildingGenConfig::tiny());
        let trajs = simulate_mobility(&space, &MobilityConfig::tiny());
        (space, trajs)
    }

    #[test]
    fn reports_respect_mss_and_period() {
        let (space, trajs) = world();
        let cfg = PositioningConfig {
            mss: 3,
            sample_size: SampleSizePolicy::UniformRandom,
            max_period_secs: 5.0,
            mu: 6.0,
            gamma: 0.2,
            wall_factor: 2.5,
            dwell_cache: false,
            seed: 2,
        };
        let iupt = generate_iupt(&space, &trajs, &cfg);
        assert!(!iupt.is_empty());
        let stats = iupt.stats();
        assert!(stats.max_sample_set_size <= 3);
        assert_eq!(stats.objects, trajs.len());

        // Per-object gaps never exceed T.
        let mut last: HashMap<indoor_iupt::ObjectId, Timestamp> = HashMap::new();
        for r in iupt.iter() {
            if let Some(prev) = last.insert(r.oid, r.t) {
                let gap = r.t.diff_millis(prev);
                assert!(gap <= 5_000, "gap {gap} ms exceeds T");
                assert!(gap > 0);
            }
        }
    }

    #[test]
    fn sampled_plocs_are_within_mu_of_truth() {
        let (space, trajs) = world();
        let cfg = PositioningConfig {
            mss: 4,
            sample_size: SampleSizePolicy::Fixed,
            max_period_secs: 3.0,
            mu: 5.0,
            gamma: 0.2,
            wall_factor: 2.5,
            dwell_cache: false,
            seed: 3,
        };
        let iupt = generate_iupt(&space, &trajs, &cfg);
        let by_oid: HashMap<indoor_iupt::ObjectId, &Trajectory> =
            trajs.iter().map(|t| (t.oid, t)).collect();
        let mut checked = 0;
        for r in iupt.iter().take(500) {
            let (floor, pos) = by_oid[&r.oid].position_at(r.t).unwrap();
            for s in r.samples.samples() {
                let p = space.ploc(s.loc);
                // Fallback-to-nearest may exceed μ in sparse corners, but
                // the common case must respect the radius.
                if p.floor == floor {
                    let d = p.pos.distance(pos);
                    assert!(d <= 5.0 + 8.0, "distance {d} implausible");
                    checked += 1;
                }
            }
        }
        assert!(checked > 0);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let (space, trajs) = world();
        let iupt = generate_iupt(&space, &trajs, &PositioningConfig::paper_synthetic());
        for r in iupt.iter().take(200) {
            assert!((r.samples.prob_sum() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn closer_plocs_get_higher_probability_on_average() {
        let (space, trajs) = world();
        let cfg = PositioningConfig::paper_synthetic();
        let iupt = generate_iupt(&space, &trajs, &cfg);
        let by_oid: HashMap<indoor_iupt::ObjectId, &Trajectory> =
            trajs.iter().map(|t| (t.oid, t)).collect();
        let (mut close_mass, mut far_mass) = (0.0, 0.0);
        let (mut close_n, mut far_n) = (0, 0);
        for r in iupt.iter() {
            if r.samples.len() < 2 {
                continue;
            }
            let (floor, pos) = by_oid[&r.oid].position_at(r.t).unwrap();
            for s in r.samples.samples() {
                let p = space.ploc(s.loc);
                if p.floor != floor {
                    continue;
                }
                if p.pos.distance(pos) < 2.0 {
                    close_mass += s.prob;
                    close_n += 1;
                } else {
                    far_mass += s.prob;
                    far_n += 1;
                }
            }
        }
        if close_n > 10 && far_n > 10 {
            assert!(close_mass / close_n as f64 > far_mass / far_n as f64);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let (space, trajs) = world();
        let cfg = PositioningConfig::paper_synthetic();
        let a = generate_iupt(&space, &trajs, &cfg);
        let b = generate_iupt(&space, &trajs, &cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.oid, y.oid);
            assert_eq!(x.t, y.t);
            assert_eq!(x.samples, y.samples);
        }
    }

    #[test]
    fn mss_one_yields_certain_reports() {
        let (space, trajs) = world();
        let cfg = PositioningConfig {
            mss: 1,
            ..PositioningConfig::paper_synthetic()
        };
        let iupt = generate_iupt(&space, &trajs, &cfg);
        for r in iupt.iter() {
            assert_eq!(r.samples.len(), 1);
            assert_eq!(r.samples.samples()[0].prob, 1.0);
        }
    }
}
