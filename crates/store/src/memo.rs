//! Kernel memoization side-tables over interned [`SetRef`] handles.
//!
//! PR 5's interner proved that real positioning feeds are massively
//! redundant — dwell-cache streams dedup into a handful of distinct
//! [`SetRef`]s — yet interning alone only saves *memory*: the kernels
//! above still recompute presence/path math from scratch for every
//! record referencing the same interned set. These side-tables turn the
//! interning layer into a **compute cache**: values keyed by a single
//! [`SetRef`] ([`SetMemo`]) or by a window-clipped sequence of
//! [`SetRef`]s ([`SeqMemo`]) are computed once and served to every later
//! record (or object sequence) that resolves to the same interned
//! content.
//!
//! # Contract
//!
//! * **Pool-local** — a [`SetRef`] is meaningful only against the pool
//!   that issued it, so a memo must never outlive (or be shared across)
//!   pools. Sharded layouts keep one memo per shard, exactly as they
//!   keep one pool per shard.
//! * **Value semantics** — because interning is value-preserving (see
//!   the crate docs), a cached value computed from one record's set is
//!   *bit-identical* to what any later record referencing the same
//!   `SetRef` would recompute. Layers above rely on this for their
//!   `to_bits` equality gates.
//! * **Strictly bounded** — both tables enforce a byte capacity with
//!   deterministic FIFO (insertion-order) eviction; inserting never
//!   leaves the table over budget, even if that means evicting the
//!   entry just inserted. Serve memory stays bounded no matter how
//!   adversarial the stream.
//! * **Invalidation is explicit** — [`SetMemo::clear`] /
//!   [`SeqMemo::clear`] drop every entry (counted in
//!   [`MemoStats::invalidations`]); callers invoke them when the
//!   context the values were computed against changes (e.g. the serve
//!   engine's query-union growth reset).
//!
//! Counters are plain integers behind the caller's own synchronization
//! (the tables take `&mut self`); no atomics are involved.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use crate::pool::SetRef;

/// Hit/miss/footprint accounting of a kernel memo table (or a merge of
/// several — see [`MemoStats::merge`], used by sharded layouts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that found no entry (including entries lost to eviction
    /// or invalidation).
    pub misses: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Resident bytes of cached values, keys, and per-entry bookkeeping
    /// (payload-only convention, matching [`crate::StoreStats::bytes`]).
    pub bytes: usize,
    /// Entries dropped to stay under the byte capacity.
    pub evictions: u64,
    /// Times the whole table was cleared because its computation context
    /// changed (e.g. the serve union grew).
    pub invalidations: u64,
}

impl MemoStats {
    /// Combines per-shard (or per-table) stats into totals; every field
    /// is additive.
    pub fn merge(self, other: MemoStats) -> MemoStats {
        MemoStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            entries: self.entries + other.entries,
            bytes: self.bytes + other.bytes,
            evictions: self.evictions + other.evictions,
            invalidations: self.invalidations + other.invalidations,
        }
    }

    /// Fraction of lookups served from the cache, in `[0, 1]` (0 when
    /// nothing was ever looked up).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }
}

/// Per-entry bookkeeping cost charged on top of the caller-reported
/// payload bytes: the slot/map entry, the eviction-queue key copy, and
/// the [`Arc`] control block.
const ENTRY_OVERHEAD: usize = std::mem::size_of::<usize>() * 6;

/// A byte-capped memo keyed by a single [`SetRef`]: dense slots indexed
/// by [`SetRef::index`], so lookups are one bounds check and one load.
///
/// Values are [`Arc`]-shared so a hit costs a clone of the handle, not
/// of the payload. Capacity is enforced by FIFO insertion-order
/// eviction (see the module docs for the full contract).
#[derive(Debug)]
pub struct SetMemo<V> {
    slots: Vec<Option<(Arc<V>, usize)>>,
    order: VecDeque<u32>,
    stats: MemoStats,
    max_bytes: usize,
}

impl<V> SetMemo<V> {
    /// An empty memo that will hold at most `max_bytes` of cached
    /// payload (plus per-entry bookkeeping).
    pub fn new(max_bytes: usize) -> Self {
        SetMemo {
            slots: Vec::new(),
            order: VecDeque::new(),
            stats: MemoStats::default(),
            max_bytes,
        }
    }

    /// Looks up the value cached for `set`, counting a hit or miss.
    pub fn get(&mut self, set: SetRef) -> Option<Arc<V>> {
        match self.slots.get(set.index()).and_then(|s| s.as_ref()) {
            Some((v, _)) => {
                self.stats.hits += 1;
                Some(Arc::clone(v))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Caches `value` for `set`, charging `payload_bytes` plus fixed
    /// per-entry overhead, then evicts oldest-first until the table is
    /// back under capacity. First writer wins: an existing entry is
    /// kept untouched (it is bit-identical by the interning contract).
    pub fn insert(&mut self, set: SetRef, value: Arc<V>, payload_bytes: usize) {
        let idx = set.index();
        if self.slots.len() <= idx {
            self.slots.resize_with(idx + 1, || None);
        }
        // anlz:allow(panic-in-hot-path): slot was just resized to cover idx
        let slot = &mut self.slots[idx];
        if slot.is_some() {
            return;
        }
        let cost = payload_bytes + ENTRY_OVERHEAD;
        *slot = Some((value, cost));
        self.order.push_back(set.index() as u32);
        self.stats.entries += 1;
        self.stats.bytes += cost;
        self.evict_to_capacity();
    }

    fn evict_to_capacity(&mut self) {
        while self.stats.bytes > self.max_bytes {
            let Some(victim) = self.order.pop_front() else {
                return;
            };
            if let Some(slot) = self.slots.get_mut(victim as usize) {
                if let Some((_, cost)) = slot.take() {
                    self.stats.entries -= 1;
                    self.stats.bytes -= cost;
                    self.stats.evictions += 1;
                }
            }
        }
    }

    /// Drops every entry (context invalidation). Hit/miss/eviction
    /// counters are cumulative and survive.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.order.clear();
        self.stats.entries = 0;
        self.stats.bytes = 0;
        self.stats.invalidations += 1;
    }

    /// Current accounting.
    pub fn stats(&self) -> MemoStats {
        self.stats
    }
}

/// A byte-capped memo keyed by a window-clipped **sequence** of
/// [`SetRef`]s — the key under which a whole object trajectory's kernel
/// result (reduction, path/DP products, mass factors) is cached. Two
/// objects (or the same object across window slides) whose clipped
/// records resolve to the same interned sets share one entry.
///
/// Capacity is enforced by FIFO insertion-order eviction (see the
/// module docs for the full contract).
#[derive(Debug)]
pub struct SeqMemo<V> {
    map: HashMap<Box<[SetRef]>, (Arc<V>, usize)>,
    order: VecDeque<Box<[SetRef]>>,
    stats: MemoStats,
    max_bytes: usize,
}

impl<V> SeqMemo<V> {
    /// An empty memo that will hold at most `max_bytes` of cached
    /// payload (plus keys and per-entry bookkeeping).
    pub fn new(max_bytes: usize) -> Self {
        SeqMemo {
            map: HashMap::new(),
            order: VecDeque::new(),
            stats: MemoStats::default(),
            max_bytes,
        }
    }

    /// Looks up the value cached for the clipped sequence `key`,
    /// counting a hit or miss.
    pub fn get(&mut self, key: &[SetRef]) -> Option<Arc<V>> {
        match self.map.get(key) {
            Some((v, _)) => {
                self.stats.hits += 1;
                Some(Arc::clone(v))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Caches `value` under `key`, charging `payload_bytes` plus two key
    /// copies and fixed per-entry overhead, then evicts oldest-first
    /// until the table is back under capacity. First writer wins.
    pub fn insert(&mut self, key: &[SetRef], value: Arc<V>, payload_bytes: usize) {
        if self.map.contains_key(key) {
            return;
        }
        let key: Box<[SetRef]> = key.into();
        let cost = payload_bytes + 2 * key.len() * std::mem::size_of::<SetRef>() + ENTRY_OVERHEAD;
        self.order.push_back(key.clone());
        self.map.insert(key, (value, cost));
        self.stats.entries += 1;
        self.stats.bytes += cost;
        self.evict_to_capacity();
    }

    fn evict_to_capacity(&mut self) {
        while self.stats.bytes > self.max_bytes {
            let Some(victim) = self.order.pop_front() else {
                return;
            };
            if let Some((_, cost)) = self.map.remove(&victim) {
                self.stats.entries -= 1;
                self.stats.bytes -= cost;
                self.stats.evictions += 1;
            }
        }
    }

    /// Drops every entry (context invalidation). Hit/miss/eviction
    /// counters are cumulative and survive.
    pub fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
        self.stats.entries = 0;
        self.stats.bytes = 0;
        self.stats.invalidations += 1;
    }

    /// Current accounting.
    pub fn stats(&self) -> MemoStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{PoolItem, SampleSetPool};

    #[derive(Debug, Clone, PartialEq)]
    struct Item(u32);

    impl PoolItem for Item {
        fn content_hash(&self) -> u64 {
            u64::from(self.0)
        }
        fn heap_bytes(&self) -> usize {
            0
        }
    }

    fn refs(n: u32) -> Vec<SetRef> {
        let mut pool = SampleSetPool::new();
        (0..n).map(|i| pool.intern(Item(i))).collect()
    }

    #[test]
    fn set_memo_hits_after_insert_and_counts() {
        let r = refs(3);
        let mut memo: SetMemo<u32> = SetMemo::new(1 << 20);
        assert!(memo.get(r[0]).is_none());
        memo.insert(r[0], Arc::new(7), 16);
        assert_eq!(*memo.get(r[0]).unwrap(), 7);
        assert!(memo.get(r[1]).is_none());
        let s = memo.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 2, 1));
        assert!(s.bytes >= 16);
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn set_memo_first_writer_wins() {
        let r = refs(1);
        let mut memo: SetMemo<u32> = SetMemo::new(1 << 20);
        memo.insert(r[0], Arc::new(1), 8);
        memo.insert(r[0], Arc::new(2), 8);
        assert_eq!(*memo.get(r[0]).unwrap(), 1);
        assert_eq!(memo.stats().entries, 1);
    }

    #[test]
    fn set_memo_evicts_fifo_under_byte_cap() {
        let r = refs(4);
        let mut memo: SetMemo<u32> = SetMemo::new(2 * (64 + ENTRY_OVERHEAD));
        for (i, &sr) in r.iter().enumerate() {
            memo.insert(sr, Arc::new(i as u32), 64);
        }
        let s = memo.stats();
        assert_eq!(s.entries, 2);
        assert_eq!(s.evictions, 2);
        assert!(s.bytes <= 2 * (64 + ENTRY_OVERHEAD));
        // Oldest two evicted, newest two retained.
        assert!(memo.get(r[0]).is_none());
        assert!(memo.get(r[1]).is_none());
        assert!(memo.get(r[2]).is_some());
        assert!(memo.get(r[3]).is_some());
    }

    #[test]
    fn set_memo_clear_counts_invalidation_and_keeps_counters() {
        let r = refs(1);
        let mut memo: SetMemo<u32> = SetMemo::new(1 << 20);
        memo.insert(r[0], Arc::new(1), 8);
        memo.get(r[0]);
        memo.clear();
        let s = memo.stats();
        assert_eq!((s.entries, s.bytes), (0, 0));
        assert_eq!(s.invalidations, 1);
        assert_eq!(s.hits, 1, "cumulative counters survive a clear");
        assert!(memo.get(r[0]).is_none());
    }

    #[test]
    fn seq_memo_keys_by_clipped_sequence() {
        let r = refs(3);
        let mut memo: SeqMemo<&'static str> = SeqMemo::new(1 << 20);
        memo.insert(&[r[0], r[1]], Arc::new("ab"), 8);
        assert_eq!(*memo.get(&[r[0], r[1]]).unwrap(), "ab");
        assert!(memo.get(&[r[0]]).is_none(), "prefix is a distinct key");
        assert!(memo.get(&[r[1], r[0]]).is_none(), "order matters");
        assert!(memo.get(&[]).is_none(), "empty clip is a distinct key");
    }

    #[test]
    fn seq_memo_evicts_fifo_and_an_oversized_entry_evicts_itself() {
        let r = refs(2);
        let mut memo: SeqMemo<u32> = SeqMemo::new(200);
        memo.insert(&[r[0]], Arc::new(1), 64);
        assert_eq!(memo.stats().entries, 1);
        // An entry larger than the whole cap never sticks — the table
        // may not end an insert over budget.
        memo.insert(&[r[1]], Arc::new(2), 10_000);
        let s = memo.stats();
        assert_eq!(s.entries, 0);
        assert_eq!(s.evictions, 2);
        assert_eq!(s.bytes, 0);
    }

    #[test]
    fn seq_memo_clear_counts_invalidation() {
        let r = refs(1);
        let mut memo: SeqMemo<u32> = SeqMemo::new(1 << 20);
        memo.insert(&[r[0]], Arc::new(1), 8);
        memo.clear();
        assert_eq!(memo.stats().entries, 0);
        assert_eq!(memo.stats().invalidations, 1);
    }

    #[test]
    fn memo_stats_merge_is_additive() {
        let a = MemoStats {
            hits: 1,
            misses: 2,
            entries: 3,
            bytes: 4,
            evictions: 5,
            invalidations: 6,
        };
        let m = a.merge(a);
        assert_eq!(m.hits, 2);
        assert_eq!(m.misses, 4);
        assert_eq!(m.entries, 6);
        assert_eq!(m.bytes, 8);
        assert_eq!(m.evictions, 10);
        assert_eq!(m.invalidations, 12);
        assert!((a.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(MemoStats::default().hit_rate(), 0.0);
    }
}
