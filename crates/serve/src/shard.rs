//! The shard worker: one thread owning one object-partition of the
//! positioning log, its bucket caches, and the per-advance evaluation of
//! its objects.
//!
//! # Caching scheme
//!
//! Sealed buckets cache per-object state keyed by record *positions* into
//! the shard's append-only log (no sample sets are cloned out of it). At
//! advance time the window's flow decomposes per object:
//!
//! * an object whose windowed records all fall in **one** bucket
//!   contributes exactly its cached bucket contribution — presence over
//!   the bucket-local subsequence *is* presence over the windowed
//!   sequence, so the cache is exact, not an approximation;
//! * an object whose records **straddle** bucket boundaries has a
//!   non-additive presence (possible paths cross the boundary), so the
//!   worker recomputes it exactly over the full windowed sequence via the
//!   same [`object_flow_contributions`] kernel the batch search uses.
//!
//! # Two evaluation protocols
//!
//! The **eager** protocol ([`ShardWorker::evaluate`]) computes every
//! sealed object's full contribution at seal time and replies with the
//! shard's complete window contribution list — PR 2's behaviour.
//!
//! The **bound-pruned** protocol splits an advance into two phases.
//! [`ShardWorker::advance_bounds`] seals buckets *cheaply*: only each
//! object's record positions and PSL candidate list (`Q ∩ psls`, a scan —
//! no presence computation) are recorded, and the reply carries the
//! shard's per-object candidate lists so the coordinator can build COUNT
//! flow bounds per location. [`ShardWorker::evaluate_lazy`] then serves
//! exact per-location contributions lazily, only for the (location,
//! object) pairs the coordinator's threshold loop could not prune;
//! computed scores are memoized in the bucket caches, so a location
//! evaluated on one slide is free on the next while its bucket stays in
//! the window.
//!
//! The worker owns no thread of its own: the engine runs one
//! [`ShardWorker`] per shard inside a [`popflow_exec::ShardPool`], whose
//! FIFO job queues give exactly the ordering the protocols rely on — an
//! ingest routed before an advance is always sealed by it.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use indoor_iupt::{Iupt, ObjectId, Record, StoreStats};
use indoor_model::{IndoorSpace, SLocId};
use popflow_core::{
    intersect_sorted, object_flow_contributions, object_flow_contributions_for, scan_psls,
    FlowConfig, FlowError, ObjectContribution, QuerySet, WindowSpec,
};

/// One shard's answer to an eager `Advance`.
pub(crate) struct ShardReport {
    /// Non-pruned objects in the window with their contributions,
    /// ascending by object id. `Arc` because cached contributions are
    /// shared with the bucket caches across many advances — a window
    /// object costs one refcount bump per slide, not two `Vec` clones.
    pub contributions: Vec<(ObjectId, Arc<ObjectContribution>)>,
    /// Distinct objects with records in the window (including pruned).
    pub objects_total: usize,
    /// Objects served from a sealed bucket's cache.
    pub cache_hits: usize,
    /// Objects recomputed exactly because their records straddle buckets.
    pub straddlers: usize,
    /// Presence computations performed during this advance (bucket
    /// sealing + straddlers), counted per object.
    pub fresh_presence: usize,
    /// The same work counted per (object, location) cell — the unit the
    /// bound-pruned protocol prunes at.
    pub presence_cells: usize,
    /// Footprint/interner accounting of this shard's log, as of this
    /// advance.
    pub store: StoreStats,
    /// First error hit, if any (the report is then partial).
    pub error: Option<FlowError>,
}

/// Phase-1 reply of the bound-pruned advance: who is in the window and
/// which query locations each object could contribute to. No presence
/// has been computed yet — sealing was a PSL scan.
pub(crate) struct BoundsReport {
    /// `(oid, Q ∩ psls)` per candidate window object (objects with an
    /// empty candidate list are omitted), ascending by object id.
    pub candidates: Vec<(ObjectId, Vec<SLocId>)>,
    /// Distinct objects with records in the window (including
    /// non-candidates).
    pub objects_total: usize,
    /// Window objects whose records straddle bucket boundaries.
    pub straddlers: usize,
    /// Footprint/interner accounting of this shard's log, as of this
    /// advance.
    pub store: StoreStats,
}

/// Phase-2 reply: exact contributions restricted to the requested
/// locations, ascending by object id.
pub(crate) struct EvalReport {
    pub contributions: Vec<(ObjectId, ObjectContribution)>,
    /// (object, location) cells freshly evaluated by this request.
    pub evaluated_cells: usize,
    /// Cells served from lazily-filled caches (evaluated on an earlier
    /// slide for a bucket still in the window).
    pub cached_cells: usize,
    /// Objects that paid at least one fresh presence evaluation in this
    /// request. The coordinator deduplicates across the advance's
    /// requests — an object evaluated for several locations counts once
    /// toward the per-object presence stat.
    pub evaluated_oids: Vec<ObjectId>,
    /// First error hit, if any (the report is then partial).
    pub error: Option<FlowError>,
}

/// One object's sealed state within one bucket.
struct CachedObject {
    /// The object's record positions in the shard log, in time order —
    /// the log is append-only, so positions are stable and the cache
    /// never duplicates sample sets.
    records: Vec<u32>,
    /// Eager sealing: the bucket-local contribution (`None` when
    /// PSL-pruned). Untouched by the bound-pruned protocol.
    contribution: Option<Arc<ObjectContribution>>,
    /// Cheap sealing: the bucket-local candidate list `Q ∩ psls`,
    /// ascending. Untouched by the eager protocol.
    relevant: Vec<SLocId>,
    /// Bound-pruned protocol: lazily-filled exact per-location scores.
    scores: HashMap<SLocId, f64>,
    /// Whether a lazy evaluation of this object fell back to the DP
    /// (hybrid engine); sticky, as the fallback is a per-object property.
    dp_fallback: bool,
}

/// Per-bucket cache: every object with records in the bucket.
type BucketCache = BTreeMap<ObjectId, CachedObject>;

/// Where a window object's lazy evaluation state lives for the current
/// bound-pruned advance.
enum WindowSlot {
    /// All records in one sealed bucket: scores memoize in that bucket's
    /// cache and survive across slides.
    Single(i64),
    /// A bucket straddler: the windowed sequence crosses bucket bounds,
    /// so its lazy scores are only valid for this window.
    Straddler {
        records: Vec<u32>,
        relevant: Vec<SLocId>,
        scores: HashMap<SLocId, f64>,
        dp_fallback: bool,
    },
}

/// The state owned by one worker thread.
pub(crate) struct ShardWorker {
    space: Arc<IndoorSpace>,
    query_set: QuerySet,
    cfg: FlowConfig,
    spec: WindowSpec,
    /// This shard's partition of the positioning log.
    iupt: Iupt,
    /// Sealed buckets by index; evicted once they leave the window.
    buckets: BTreeMap<i64, BucketCache>,
    /// Highest bucket index sealed so far.
    sealed_through: Option<i64>,
    /// Window map of the latest `AdvanceBounds`, consulted by `Evaluate`.
    window: BTreeMap<ObjectId, WindowSlot>,
}

impl ShardWorker {
    pub(crate) fn new(
        space: Arc<IndoorSpace>,
        query_set: QuerySet,
        cfg: FlowConfig,
        spec: WindowSpec,
    ) -> Self {
        ShardWorker {
            space,
            query_set,
            cfg,
            spec,
            iupt: Iupt::new(),
            buckets: BTreeMap::new(),
            sealed_through: None,
            window: BTreeMap::new(),
        }
    }

    /// Appends one record (already validated and routed by the engine)
    /// to this shard's partition of the positioning log.
    pub(crate) fn ingest(&mut self, record: Record) {
        self.iupt.push(record);
    }

    /// Seals buckets through `window_end`, then assembles the shard's
    /// window contributions (the eager protocol).
    pub(crate) fn evaluate(&mut self, window_start: i64, window_end: i64) -> ShardReport {
        let mut report = ShardReport {
            contributions: Vec::new(),
            objects_total: 0,
            cache_hits: 0,
            straddlers: 0,
            fresh_presence: 0,
            presence_cells: 0,
            store: self.iupt.store_stats(),
            error: None,
        };

        if let Err(e) = self.seal_through(
            window_start,
            window_end,
            true,
            &mut report.fresh_presence,
            &mut report.presence_cells,
        ) {
            report.error = Some(e);
            return report;
        }
        // Buckets that slid out of the window are never consulted again.
        self.buckets.retain(|&b, _| b >= window_start);

        let presence = self.window_presence(window_start, window_end);
        report.objects_total = presence.len();

        for (&oid, &(first_bucket, bucket_count)) in &presence {
            if bucket_count == 1 {
                report.cache_hits += 1;
                let cached = self.buckets[&first_bucket]
                    .get(&oid)
                    .expect("presence map lists cached objects only");
                if let Some(contribution) = &cached.contribution {
                    report.contributions.push((oid, Arc::clone(contribution)));
                }
            } else {
                // The windowed sequence is the concatenation of the
                // object's cached bucket slices (buckets ascend, each
                // slice is time-ordered): recompute it exactly.
                report.straddlers += 1;
                let ShardWorker {
                    space,
                    query_set,
                    cfg,
                    iupt,
                    buckets,
                    ..
                } = self;
                let log: &Iupt = iupt;
                let sets = buckets
                    .range(first_bucket..=window_end)
                    .filter_map(|(_, cache)| cache.get(&oid))
                    .flat_map(|cached| cached.records.iter().map(|&i| log.samples_at(i)));
                match object_flow_contributions(space, sets, query_set, cfg) {
                    Ok(Some(contribution)) => {
                        report.fresh_presence += 1;
                        report.presence_cells += contribution.relevant.len();
                        report.contributions.push((oid, Arc::new(contribution)));
                    }
                    // PSL-pruned over the full window: no presence was
                    // computed, matching the batch `objects_computed`
                    // accounting.
                    Ok(None) => {}
                    Err(e) => {
                        report.error = Some(e);
                        return report;
                    }
                }
            }
        }
        report.contributions.sort_unstable_by_key(|(oid, _)| *oid);
        report
    }

    /// Bound-pruned phase 1: cheap sealing, eviction, and candidate
    /// assembly. Performs no presence computation at all.
    pub(crate) fn advance_bounds(&mut self, window_start: i64, window_end: i64) -> BoundsReport {
        let (mut fresh, mut cells) = (0, 0);
        self.seal_through(window_start, window_end, false, &mut fresh, &mut cells)
            .expect("cheap sealing performs no fallible merge or presence work");
        debug_assert_eq!((fresh, cells), (0, 0));
        self.buckets.retain(|&b, _| b >= window_start);

        let presence = self.window_presence(window_start, window_end);
        let objects_total = presence.len();
        let mut straddlers = 0;
        let mut candidates = Vec::new();
        self.window.clear();
        for (&oid, &(first_bucket, bucket_count)) in &presence {
            if bucket_count == 1 {
                let relevant = self.buckets[&first_bucket][&oid].relevant.clone();
                if !relevant.is_empty() {
                    candidates.push((oid, relevant));
                }
                self.window.insert(oid, WindowSlot::Single(first_bucket));
            } else {
                straddlers += 1;
                // The window-level PSL set is the union of the bucket
                // PSL sets (PSLs come from raw record support), so the
                // candidate list is the union of the cached ones.
                let mut records = Vec::new();
                let mut relevant: Vec<SLocId> = Vec::new();
                for (_, cache) in self.buckets.range(first_bucket..=window_end) {
                    if let Some(cached) = cache.get(&oid) {
                        records.extend_from_slice(&cached.records);
                        relevant = union_sorted(&relevant, &cached.relevant);
                    }
                }
                if !relevant.is_empty() {
                    candidates.push((oid, relevant.clone()));
                }
                self.window.insert(
                    oid,
                    WindowSlot::Straddler {
                        records,
                        relevant,
                        scores: HashMap::new(),
                        dp_fallback: false,
                    },
                );
            }
        }
        candidates.sort_unstable_by_key(|(oid, _)| *oid);
        BoundsReport {
            candidates,
            objects_total,
            straddlers,
            store: self.iupt.store_stats(),
        }
    }

    /// Bound-pruned phase 2: exact contributions for `oids`, restricted
    /// to `slocs` (sorted). Fresh scores are computed through the same
    /// per-object kernel as everything else and memoized.
    pub(crate) fn evaluate_lazy(&mut self, slocs: &[SLocId], oids: &[ObjectId]) -> EvalReport {
        let mut report = EvalReport {
            contributions: Vec::with_capacity(oids.len()),
            evaluated_cells: 0,
            cached_cells: 0,
            evaluated_oids: Vec::new(),
            error: None,
        };
        let ShardWorker {
            space,
            query_set,
            cfg,
            iupt,
            buckets,
            window,
            ..
        } = self;
        let log: &Iupt = iupt;
        for &oid in oids {
            let Some(slot) = window.get_mut(&oid) else {
                report.error = Some(FlowError::EngineUnavailable {
                    detail: format!("evaluate requested unknown window object {oid}"),
                });
                return report;
            };
            let (records, relevant, scores, dp_fallback) = match slot {
                WindowSlot::Single(b) => {
                    let cached = buckets
                        .get_mut(b)
                        .and_then(|cache| cache.get_mut(&oid))
                        .expect("window slot points at a sealed bucket");
                    let CachedObject {
                        records,
                        relevant,
                        scores,
                        dp_fallback,
                        ..
                    } = cached;
                    (&*records, &*relevant, scores, dp_fallback)
                }
                WindowSlot::Straddler {
                    records,
                    relevant,
                    scores,
                    dp_fallback,
                } => (&*records, &*relevant, scores, dp_fallback),
            };
            let requested = intersect_sorted(slocs, relevant);
            let missing: Vec<SLocId> = requested
                .iter()
                .copied()
                .filter(|q| !scores.contains_key(q))
                .collect();
            report.cached_cells += requested.len() - missing.len();
            if !missing.is_empty() {
                report.evaluated_oids.push(oid);
                let sets = records.iter().map(|&i| log.samples_at(i));
                match object_flow_contributions_for(space, sets, &missing, query_set, cfg) {
                    Ok(contribution) => {
                        if let Some(c) = &contribution {
                            report.evaluated_cells += c.relevant.len();
                            *dp_fallback = *dp_fallback || c.dp_fallback;
                            for (q, s) in c.relevant.iter().zip(&c.scores) {
                                scores.insert(*q, *s);
                            }
                        }
                        // Requested locations the kernel did not score
                        // (unreachable for candidates; defensive) are 0.
                        for q in &missing {
                            scores.entry(*q).or_insert(0.0);
                        }
                    }
                    Err(e) => {
                        report.error = Some(e);
                        return report;
                    }
                }
            }
            let values: Vec<f64> = requested.iter().map(|q| scores[q]).collect();
            report.contributions.push((
                oid,
                ObjectContribution {
                    relevant: requested,
                    scores: values,
                    dp_fallback: *dp_fallback,
                },
            ));
        }
        report.contributions.sort_unstable_by_key(|(oid, _)| *oid);
        report
    }

    /// Which buckets of the window does each object appear in? Most
    /// objects appear in exactly one, so track (first bucket, bucket
    /// count) instead of materializing per-object bucket lists.
    fn window_presence(&self, window_start: i64, window_end: i64) -> HashMap<ObjectId, (i64, u32)> {
        let mut presence: HashMap<ObjectId, (i64, u32)> = HashMap::new();
        for (&b, cache) in self.buckets.range(window_start..=window_end) {
            for &oid in cache.keys() {
                presence
                    .entry(oid)
                    .and_modify(|e| e.1 += 1)
                    .or_insert((b, 1));
            }
        }
        presence
    }

    /// Seals every not-yet-sealed bucket in `[window_start, window_end]`.
    /// Buckets before `window_start` that were never sealed are skipped —
    /// the window has already moved past them.
    ///
    /// `eager` sealing computes and caches full contributions (counting
    /// them into `fresh`/`cells`); cheap sealing records only positions
    /// and PSL candidate lists, deferring all presence work to
    /// [`ShardWorker::evaluate_lazy`].
    fn seal_through(
        &mut self,
        window_start: i64,
        window_end: i64,
        eager: bool,
        fresh: &mut usize,
        cells: &mut usize,
    ) -> Result<(), FlowError> {
        let first_unsealed = self.sealed_through.map_or(i64::MIN, |s| s + 1);
        for b in first_unsealed.max(window_start)..=window_end {
            if self.buckets.contains_key(&b) {
                continue;
            }
            let interval = self.spec.bucket_interval(b);
            let positions = self.iupt.sequence_positions_in(interval);
            let mut cache: BucketCache = BTreeMap::new();
            for (oid, records) in positions {
                let log = &self.iupt;
                let sets = records.iter().map(|&i| log.samples_at(i));
                let cached = if eager {
                    let contribution =
                        object_flow_contributions(&self.space, sets, &self.query_set, &self.cfg)?
                            .map(Arc::new);
                    // PSL-pruned objects performed no presence
                    // computation — count like the batch search's
                    // `objects_computed`.
                    *fresh += usize::from(contribution.is_some());
                    if let Some(c) = &contribution {
                        *cells += c.relevant.len();
                    }
                    CachedObject {
                        records,
                        contribution,
                        relevant: Vec::new(),
                        scores: HashMap::new(),
                        dp_fallback: false,
                    }
                } else {
                    let psls = scan_psls(&self.space, sets);
                    CachedObject {
                        records,
                        contribution: None,
                        relevant: self.query_set.intersection_sorted(&psls),
                        scores: HashMap::new(),
                        dp_fallback: false,
                    }
                };
                cache.insert(oid, cached);
            }
            self.buckets.insert(b, cache);
        }
        self.sealed_through = Some(
            self.sealed_through
                .map_or(window_end, |s| s.max(window_end)),
        );
        Ok(())
    }
}

/// Union of two sorted, deduplicated `SLocId` slices, ascending.
fn union_sorted(a: &[SLocId], b: &[SLocId]) -> Vec<SLocId> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}
