//! Runner-side types: configuration, the per-test RNG, and case
//! outcomes.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Subset of the real `ProptestConfig`: `cases` and
/// `max_global_rejects` are honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases each test must pass.
    pub cases: u32,
    /// Abort after this many `prop_assume!` rejections across the whole
    /// run.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Deterministic per-test RNG. Seeded from the test name so distinct
/// tests explore distinct inputs while every run of the same test is
/// reproducible.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Why a generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` and is regenerated.
    Reject(String),
    /// The case failed an assertion (or `TestCaseError::fail`).
    Fail(String),
}

impl TestCaseError {
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
            TestCaseError::Fail(r) => write!(f, "failed: {r}"),
        }
    }
}

/// Result type of a single case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A test failure as reported by [`TestRunner::run`].
#[derive(Debug, Clone)]
pub struct TestError(pub String);

impl std::fmt::Display for TestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Explicit-runner API: drives a strategy through `cases` executions of
/// a closure, mirroring `proptest::test_runner::TestRunner`.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    rng: TestRng,
}

impl TestRunner {
    /// Seeded from the caller's source *file*, so explicit runners in
    /// distinct files explore independent input streams while staying
    /// deterministic run to run. Line/column are deliberately excluded:
    /// unrelated edits shifting lines must not change which inputs a
    /// property test explores. (Two runners in the same file share a
    /// seed — acceptable for a shim; give them distinct strategies.)
    #[track_caller]
    pub fn new(config: ProptestConfig) -> Self {
        let loc = std::panic::Location::caller();
        TestRunner {
            rng: TestRng::for_test(loc.file()),
            config,
        }
    }

    /// Runs `test` on `config.cases` generated inputs. Rejected cases
    /// are regenerated (with a global cap); the first failure is
    /// returned as `Err`.
    pub fn run<S, F>(&mut self, strategy: &S, test: F) -> Result<(), TestError>
    where
        S: crate::strategy::Strategy,
        F: Fn(S::Value) -> TestCaseResult,
    {
        let mut ran = 0u32;
        let mut rejects = 0u32;
        while ran < self.config.cases {
            let value = strategy.generate(&mut self.rng);
            match test(value) {
                Ok(()) => ran += 1,
                Err(TestCaseError::Reject(why)) => {
                    rejects += 1;
                    if rejects > self.config.max_global_rejects {
                        return Err(TestError(format!(
                            "too many rejected cases ({rejects}); last: {why}"
                        )));
                    }
                }
                Err(TestCaseError::Fail(why)) => {
                    return Err(TestError(format!("failed at case {ran}: {why}")));
                }
            }
        }
        Ok(())
    }
}
