//! Workspace smoke test: the paper's running example, end to end.
//!
//! Builds the Figure 1 floor plan, loads the Table 2 IUPT, computes the
//! Example 3 flows, and answers the Example 4 top-k query with
//! `best_first` — one assertion-backed pass over the fixtures → flow →
//! query pipeline so CI exercises the worked example itself, not just
//! per-crate unit tests.

use indoor_iupt::fixtures::paper_table2;
use indoor_iupt::{TimeInterval, Timestamp};
use indoor_model::fixtures::paper_figure1;
use popflow_core::{
    best_first, best_first_par, flow, nested_loop, nested_loop_par, ExecConfig, FlowConfig,
    QuerySet, TkPlQuery,
};

/// The worked example's normalization: no data reduction, full-product
/// denominator (the paper's Examples 2–4 compute with these).
fn worked_example_config() -> FlowConfig {
    FlowConfig::default()
        .without_reduction()
        .with_full_product_normalization()
}

#[test]
fn paper_running_example_end_to_end() {
    let fig = paper_figure1();
    let space = &fig.space;
    let mut iupt = paper_table2();
    let interval = TimeInterval::new(Timestamp::from_secs(1), Timestamp::from_secs(8));
    let cfg = worked_example_config();

    // Example 3: Θ(t1..t8, r6) = 1.97 and Θ(t1..t8, r1) = 0.5.
    let theta_r6 = flow(space, &mut iupt, fig.r[5], interval, &cfg)
        .expect("flow over r6 computes")
        .flow;
    let theta_r1 = flow(space, &mut iupt, fig.r[0], interval, &cfg)
        .expect("flow over r1 computes")
        .flow;
    assert!(
        (theta_r6 - 1.97).abs() < 0.01,
        "Θ(r6) should be ≈1.97, got {theta_r6}"
    );
    assert!(
        (theta_r1 - 0.5).abs() < 0.01,
        "Θ(r1) should be ≈0.5, got {theta_r1}"
    );

    // Example 4: top-1 among Q = {r1, r6} is r6, with the same flow
    // value the direct computation produced.
    let query = TkPlQuery::new(1, QuerySet::new(vec![fig.r[0], fig.r[5]]), interval);
    let outcome = best_first(space, &mut iupt, &query, &cfg).expect("query evaluates");
    assert_eq!(outcome.ranking.len(), 1, "top-1 query returns one location");
    let top = &outcome.ranking[0];
    assert_eq!(top.sloc, fig.r[5], "the paper's Example 4 returns r6");
    assert!(
        (top.flow - theta_r6).abs() < 1e-9,
        "best_first reports the same flow as the direct computation"
    );
}

/// The exec-layer smoke gate: on the Figure 1 / Table 2 fixture, the
/// 4-thread parallel drivers return exactly — bit for bit — what the
/// serial drivers return, on both the worked-example and the default
/// configuration.
#[test]
fn four_thread_parallel_drivers_match_serial_on_paper_fixture() {
    let fig = paper_figure1();
    let space = &fig.space;
    let interval = TimeInterval::new(Timestamp::from_secs(1), Timestamp::from_secs(8));
    for base in [worked_example_config(), FlowConfig::default()] {
        let par_cfg = FlowConfig {
            exec: ExecConfig::with_threads(4),
            ..base
        };
        let query = TkPlQuery::new(3, QuerySet::new(fig.r.to_vec()), interval);

        let mut iupt = paper_table2();
        let nl = nested_loop(space, &mut iupt, &query, &base).expect("serial nested_loop");
        let nl_par =
            nested_loop_par(space, &mut iupt, &query, &par_cfg).expect("parallel nested_loop");
        assert_eq!(nl.topk_slocs(), nl_par.topk_slocs());
        for (a, b) in nl.ranking.iter().zip(nl_par.ranking.iter()) {
            assert_eq!(a.flow.to_bits(), b.flow.to_bits(), "nested_loop flow bits");
        }

        let bf = best_first(space, &mut iupt, &query, &base).expect("serial best_first");
        let bf_par =
            best_first_par(space, &mut iupt, &query, &par_cfg).expect("parallel best_first");
        assert_eq!(bf.topk_slocs(), bf_par.topk_slocs());
        for (a, b) in bf.ranking.iter().zip(bf_par.ranking.iter()) {
            assert_eq!(a.flow.to_bits(), b.flow.to_bits(), "best_first flow bits");
        }
    }
}

#[test]
fn paper_running_example_top2_ranks_both() {
    let fig = paper_figure1();
    let space = &fig.space;
    let mut iupt = paper_table2();
    let interval = TimeInterval::new(Timestamp::from_secs(1), Timestamp::from_secs(8));
    let cfg = worked_example_config();

    let query = TkPlQuery::new(2, QuerySet::new(vec![fig.r[0], fig.r[5]]), interval);
    let outcome = best_first(space, &mut iupt, &query, &cfg).expect("query evaluates");
    assert_eq!(outcome.ranking.len(), 2);
    assert_eq!(outcome.ranking[0].sloc, fig.r[5], "r6 first");
    assert_eq!(outcome.ranking[1].sloc, fig.r[0], "r1 second");
    assert!(outcome.ranking[0].flow >= outcome.ranking[1].flow);
}
