use indoor_geom::Rect;

use crate::ids::{FloorId, PartitionId};

/// What kind of space a partition is. The paper treats hallways and
/// staircases as rooms topologically (§2.1); the kind is kept for the data
/// generator (movement destinations are rooms, staircases connect floors)
/// and for human-readable output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PartitionKind {
    /// A destination room (office, shop, …).
    Room,
    /// A corridor connecting rooms on one floor.
    Hallway,
    /// A stairwell connecting adjacent floors.
    Staircase,
}

/// An indoor partition: an axis-aligned rectangular region on one floor,
/// bounded by walls, connected to other partitions only through doors.
///
/// Irregular real-world partitions are assumed to have been decomposed into
/// rectangles (the paper does the same for its synthetic building: "the
/// irregular partitions in these entities are decomposed into smaller but
/// regular ones", §5.3).
#[derive(Debug, Clone)]
pub struct Partition {
    /// Stable partition identifier.
    pub id: PartitionId,
    /// Floor the partition sits on.
    pub floor: FloorId,
    /// Footprint rectangle in plan coordinates.
    pub rect: Rect,
    /// Room, hallway, or staircase.
    pub kind: PartitionKind,
    /// Human-readable name, e.g. `"r3"` or `"F2-room-17"`.
    pub name: String,
}

impl Partition {
    /// Area of the partition in m².
    pub fn area(&self) -> f64 {
        self.rect.area()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_delegates_to_rect() {
        let p = Partition {
            id: PartitionId(0),
            floor: FloorId(0),
            rect: Rect::from_coords(0.0, 0.0, 4.0, 5.0),
            kind: PartitionKind::Room,
            name: "r0".into(),
        };
        assert_eq!(p.area(), 20.0);
    }
}
