//! `popflow-server`: a dependency-free TCP front-end over the
//! multi-query serving engine.
//!
//! The crate turns [`popflow_serve::ServeEngine`] into a network
//! service without pulling in an async runtime or a serialization
//! framework: the wire format is a hand-rolled length-prefixed binary
//! protocol ([`protocol`]), the transport is blocking `std::net`
//! sockets, and concurrency is one reader and one writer thread per
//! connection feeding a single tick-budgeted scheduler thread that
//! owns the engine.
//!
//! The architecture exists to preserve the one property the rest of
//! the workspace is built around: **determinism**. Clients partition
//! objects across ingest connections; the scheduler's watermark-gated
//! merge re-establishes one global non-decreasing record order, and
//! window advances run at bucket boundaries derived from event time —
//! never wall-clock — so the deltas pushed over the wire are
//! bit-identical (`f64::to_bits`) to an in-process engine fed the same
//! stream. The `server_load` experiment in `popflow-eval` gates on
//! exactly that.
//!
//! Memory is bounded end to end: the ingest queue admits at most
//! [`ServerConfig::queue_capacity_records`] records (plus one
//! in-flight batch per connection) and refuses the rest with an
//! explicit [`protocol::Frame::Throttle`]; outbound frames flow
//! through bounded per-connection channels whose overflow evicts the
//! slow consumer instead of buffering without limit.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod metric_names;
pub mod protocol;
pub mod scenario;
mod server;

pub use client::Client;
pub use server::{Server, ServerConfig};
